// Integration tests: the experiment harness end-to-end, including the
// paper's qualitative claims at small scale.
#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace nabbitc::harness {
namespace {

TEST(Harness, VariantNamesAreTheApiNames) {
  // harness::Variant IS api::Variant — one enum, one name table.
  EXPECT_STREQ(api::variant_name(Variant::kSerial), "serial");
  EXPECT_STREQ(api::variant_name(Variant::kOmpStatic), "omp-static");
  EXPECT_STREQ(api::variant_name(Variant::kOmpGuided), "omp-guided");
  EXPECT_STREQ(api::variant_name(Variant::kNabbit), "nabbit");
  EXPECT_STREQ(api::variant_name(Variant::kNabbitC), "nabbitc");
}

TEST(Harness, PaperCoreCountsMatchFigureAxes) {
  auto ps = paper_core_counts();
  ASSERT_FALSE(ps.empty());
  EXPECT_EQ(ps.front(), 1u);
  EXPECT_EQ(ps.back(), 80u);
  EXPECT_TRUE(std::is_sorted(ps.begin(), ps.end()));
}

TEST(Harness, RealRunProducesSamplesAndCounters) {
  auto w = wl::make_workload("heat", wl::SizePreset::kTiny);
  RealRunOptions o;
  o.workers = 2;
  o.repeats = 3;
  auto r = run_real(*w, Variant::kNabbitC, o);
  EXPECT_EQ(r.seconds.count(), 3u);
  EXPECT_GT(r.seconds.mean(), 0.0);
  EXPECT_GT(r.counters.tasks_executed, 0u);
  EXPECT_NE(r.checksum, 0u);
}

TEST(Harness, SimGridPolicyOrderingOnPaperMachine) {
  // The paper's headline at 80 cores, reproduced in simulation:
  //   regular benchmark (heat, paper-scale DAG): NabbitC ~ OMP-static,
  //   both far above Nabbit; NabbitC's remote% far below Nabbit's.
  auto heat = wl::make_workload("heat", wl::SizePreset::kPaper);
  SimSweepOptions so;
  auto nbc = run_sim(*heat, Variant::kNabbitC, 80, so);
  auto nb = run_sim(*heat, Variant::kNabbit, 80, so);
  auto st = run_sim(*heat, Variant::kOmpStatic, 80, so);
  EXPECT_GT(nbc.speedup(), 1.5 * nb.speedup());
  EXPECT_GT(st.speedup(), nbc.speedup() * 0.8);
  EXPECT_LT(nbc.locality.percent_remote(), 15.0);
  EXPECT_GT(nb.locality.percent_remote(), 40.0);
  EXPECT_LT(st.locality.percent_remote(), 15.0);
  // Figure 8: NabbitC performs far fewer successful steals than Nabbit.
  EXPECT_LT(nbc.steals_total(), nb.steals_total());
}

TEST(Harness, SimIrregularPageRankFavorsNabbitC) {
  // The paper's irregular headline: on the skewed twitter-like dataset at
  // scale (410 blocks, as in Table I), NabbitC beats both OpenMP static and
  // vanilla Nabbit at high core counts.
  auto tw = wl::make_workload("page-twitter-2010", wl::SizePreset::kSmall);
  SimSweepOptions so;
  auto nbc = run_sim(*tw, Variant::kNabbitC, 80, so);
  auto nb = run_sim(*tw, Variant::kNabbit, 80, so);
  auto st = run_sim(*tw, Variant::kOmpStatic, 80, so);
  EXPECT_GT(nbc.speedup(), st.speedup());
  EXPECT_GE(nbc.speedup(), 0.95 * nb.speedup());
}

TEST(Harness, SimBadColoringLosesBenefit) {
  // Table II: NabbitC under a bad coloring performs like (or worse than)
  // Nabbit — the rem% advantage disappears.
  auto heat = wl::make_workload("heat", wl::SizePreset::kPaper);
  SimSweepOptions good, bad;
  bad.coloring = nabbit::ColoringMode::kBad;
  auto g = run_sim(*heat, Variant::kNabbitC, 40, good);
  auto b = run_sim(*heat, Variant::kNabbitC, 40, bad);
  EXPECT_GT(b.locality.percent_remote(), g.locality.percent_remote() + 20.0);
  EXPECT_LT(b.speedup(), g.speedup());
}

TEST(Harness, SimInvalidColoringFailsAllColoredSteals) {
  // Table III: invalid colors => zero successful colored steals, behaviour
  // degrades to Nabbit-plus-overhead but completes fine.
  auto heat = wl::make_workload("heat", wl::SizePreset::kTiny);
  SimSweepOptions so;
  so.coloring = nabbit::ColoringMode::kInvalid;
  auto r = run_sim(*heat, Variant::kNabbitC, 8, so);
  EXPECT_EQ(r.steals_colored, 0u);
  EXPECT_GT(r.makespan, 0.0);
}

TEST(Harness, RealNabbitCNotSlowerThanNabbitTiny) {
  // On the CI host we can't measure locality wins, but NabbitC's overhead
  // versus Nabbit must be bounded (paper Table III: statistically no
  // overhead). Allow generous slack for a noisy 1-core container.
  auto w = wl::make_workload("heat", wl::SizePreset::kTiny);
  RealRunOptions o;
  o.workers = 2;
  o.repeats = 3;
  auto nb = run_real(*w, Variant::kNabbit, o);
  auto nbc = run_real(*w, Variant::kNabbitC, o);
  EXPECT_LT(nbc.seconds.min(), nb.seconds.min() * 5.0 + 0.05);
}

}  // namespace
}  // namespace nabbitc::harness
