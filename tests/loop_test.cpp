// Tests for the OpenMP-like loop schedulers: chunking math and thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "loop/loop_schedule.h"
#include "loop/thread_pool.h"

namespace nabbitc::loop {
namespace {

// -------------------------------------------------------------- pure math

TEST(LoopSchedule, StaticBlockCoversRangeDisjointly) {
  for (std::int64_t n : {0LL, 1LL, 7LL, 100LL, 101LL, 1000LL}) {
    for (std::uint32_t threads : {1u, 2u, 3u, 8u, 13u}) {
      std::vector<int> hits(static_cast<std::size_t>(n), 0);
      for (std::uint32_t t = 0; t < threads; ++t) {
        IterRange r = static_block(n, threads, t);
        for (std::int64_t i = r.lo; i < r.hi; ++i) ++hits[static_cast<std::size_t>(i)];
      }
      for (int h : hits) ASSERT_EQ(h, 1) << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(LoopSchedule, StaticBlockBalanced) {
  // OpenMP static: block sizes differ by at most one.
  for (std::int64_t n : {10LL, 97LL, 1024LL}) {
    for (std::uint32_t threads : {3u, 7u, 16u}) {
      std::int64_t lo = n, hi = 0;
      for (std::uint32_t t = 0; t < threads; ++t) {
        auto sz = static_block(n, threads, t).size();
        lo = std::min(lo, sz);
        hi = std::max(hi, sz);
      }
      EXPECT_LE(hi - lo, 1);
    }
  }
}

TEST(LoopSchedule, StaticBlockContiguousAscending) {
  std::int64_t expect = 0;
  for (std::uint32_t t = 0; t < 5; ++t) {
    IterRange r = static_block(103, 5, t);
    EXPECT_EQ(r.lo, expect);
    expect = r.hi;
  }
  EXPECT_EQ(expect, 103);
}

TEST(LoopSchedule, GuidedChunkShrinks) {
  const std::uint32_t threads = 4;
  std::int64_t remaining = 1000;
  std::int64_t prev = remaining;
  while (remaining > 0) {
    std::int64_t c = guided_chunk(remaining, threads, 1);
    ASSERT_GE(c, 1);
    ASSERT_LE(c, prev);
    prev = c;
    remaining -= c;
  }
}

TEST(LoopSchedule, GuidedChunkRespectsMinimum) {
  EXPECT_EQ(guided_chunk(1000, 4, 50), 250);  // remaining/threads dominates
  EXPECT_EQ(guided_chunk(100, 4, 50), 50);    // floor at min_chunk
  EXPECT_EQ(guided_chunk(30, 4, 50), 30);     // tail smaller than min
  EXPECT_EQ(guided_chunk(0, 4, 1), 0);
}

TEST(LoopSchedule, ScheduleNames) {
  EXPECT_STREQ(schedule_name(Schedule::kStatic), "static");
  EXPECT_STREQ(schedule_name(Schedule::kDynamic), "dynamic");
  EXPECT_STREQ(schedule_name(Schedule::kGuided), "guided");
}

// ------------------------------------------------------------- thread pool

PoolConfig pool_config(std::uint32_t n) {
  PoolConfig cfg;
  cfg.num_threads = n;
  cfg.topology = numa::Topology(2, (n + 1) / 2);
  return cfg;
}

TEST(ThreadPool, ParallelRegionRunsEveryThreadOnce) {
  ThreadPool pool(pool_config(4));
  std::vector<std::atomic<int>> hits(4);
  pool.parallel_region([&](std::uint32_t tid) { hits[tid].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RegionsAreRepeatable) {
  ThreadPool pool(pool_config(3));
  std::atomic<int> n{0};
  for (int i = 0; i < 20; ++i) {
    pool.parallel_region([&](std::uint32_t) { n.fetch_add(1); });
  }
  EXPECT_EQ(n.load(), 60);
}

class PoolSchedTest : public ::testing::TestWithParam<Schedule> {};

TEST_P(PoolSchedTest, ForCoversRangeExactlyOnce) {
  ThreadPool pool(pool_config(4));
  std::vector<std::atomic<int>> hits(5000);
  pool.parallel_for(0, 5000, GetParam(), 8,
                    [&](std::uint32_t, std::int64_t i) {
                      hits[static_cast<std::size_t>(i)].fetch_add(1);
                    });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST_P(PoolSchedTest, EmptyRangeIsNoop) {
  ThreadPool pool(pool_config(2));
  std::atomic<int> n{0};
  pool.parallel_for(10, 10, GetParam(), 1, [&](std::uint32_t, std::int64_t) { n.fetch_add(1); });
  pool.parallel_for(10, 5, GetParam(), 1, [&](std::uint32_t, std::int64_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllSchedules, PoolSchedTest,
                         ::testing::Values(Schedule::kStatic, Schedule::kDynamic,
                                           Schedule::kGuided));

TEST(ThreadPool, StaticMappingMatchesStaticBlock) {
  // The thread->iteration mapping must be exactly static_block's, because
  // the locality accounting depends on it.
  ThreadPool pool(pool_config(4));
  std::mutex mu;
  std::vector<std::pair<std::uint32_t, std::int64_t>> seen;
  pool.parallel_for(0, 103, Schedule::kStatic, 1,
                    [&](std::uint32_t tid, std::int64_t i) {
                      std::lock_guard<std::mutex> lk(mu);
                      seen.emplace_back(tid, i);
                    });
  for (auto [tid, i] : seen) {
    IterRange r = static_block(103, 4, tid);
    EXPECT_GE(i, r.lo);
    EXPECT_LT(i, r.hi);
  }
}

TEST(ThreadPool, DynamicChunksAreChunkSized) {
  ThreadPool pool(pool_config(3));
  std::mutex mu;
  std::vector<std::int64_t> chunk_sizes;
  pool.parallel_for_chunks(0, 100, Schedule::kDynamic, 7,
                           [&](std::uint32_t, std::int64_t lo, std::int64_t hi) {
                             std::lock_guard<std::mutex> lk(mu);
                             chunk_sizes.push_back(hi - lo);
                           });
  std::int64_t total = 0;
  for (auto s : chunk_sizes) {
    EXPECT_LE(s, 7);
    EXPECT_GE(s, 1);
    total += s;
  }
  EXPECT_EQ(total, 100);
}

TEST(ThreadPool, SingleThreadPoolWorks) {
  ThreadPool pool(pool_config(1));
  std::int64_t sum = 0;
  pool.parallel_for(0, 100, Schedule::kGuided, 1,
                    [&](std::uint32_t tid, std::int64_t i) {
                      EXPECT_EQ(tid, 0u);
                      sum += i;
                    });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, NestedDataParallelPhasesBarrier) {
  // Writes from one parallel_for must be visible to the next (implicit
  // barrier between loops).
  ThreadPool pool(pool_config(4));
  std::vector<int> a(1000, 0), b(1000, 0);
  pool.parallel_for(0, 1000, Schedule::kStatic, 1,
                    [&](std::uint32_t, std::int64_t i) { a[static_cast<std::size_t>(i)] = static_cast<int>(i); });
  pool.parallel_for(0, 1000, Schedule::kStatic, 1, [&](std::uint32_t, std::int64_t i) {
    b[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(999 - i)] + 1;
  });
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(b[static_cast<std::size_t>(i)], 999 - i + 1);
}

}  // namespace
}  // namespace nabbitc::loop
