// Property-based sweeps across module boundaries: randomized task graphs,
// parameterized parallel_for coverage, scheduling-policy invariants, and
// simulator conservation laws.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "api/nabbitc.h"
#include "harness/experiment.h"
#include "loop/thread_pool.h"
#include "rt/parallel_for.h"
#include "sim/sim_engine.h"
#include "support/rng.h"

namespace nabbitc {
namespace {

// ---------------------------------------------------- parallel_for sweeps

class PforParams
    : public ::testing::TestWithParam<std::tuple<int, std::int64_t, std::int64_t>> {};

TEST_P(PforParams, SumsArithmeticSeries) {
  auto [workers, n, grain] = GetParam();
  api::RuntimeOptions opts;
  opts.workers = static_cast<std::uint32_t>(workers);
  api::Runtime rt(opts);
  std::atomic<long long> sum{0};
  rt.run_parallel([&, n = n, grain = grain](rt::Worker& w) {
    rt::parallel_for(w, 0, n, grain, [&](std::int64_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PforParams,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values<std::int64_t>(1, 63, 1024),
                       ::testing::Values<std::int64_t>(1, 7, 256)));

// ------------------------------------------------ loop schedule coverage

class LoopCoverage
    : public ::testing::TestWithParam<std::tuple<loop::Schedule, std::int64_t>> {};

TEST_P(LoopCoverage, RandomSizesCoverEveryIndexOnce) {
  auto [sched, chunk] = GetParam();
  loop::PoolConfig pc;
  pc.num_threads = 3;
  loop::ThreadPool pool(pc);
  Pcg32 rng(99, 1);
  for (int round = 0; round < 6; ++round) {
    const std::int64_t n = 1 + static_cast<std::int64_t>(rng.below(700));
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    pool.parallel_for(0, n, sched, chunk, [&](std::uint32_t, std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (auto& h : hits) ASSERT_EQ(h.load(), 1) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LoopCoverage,
    ::testing::Combine(::testing::Values(loop::Schedule::kStatic,
                                         loop::Schedule::kDynamic,
                                         loop::Schedule::kGuided),
                       ::testing::Values<std::int64_t>(1, 5)));

// --------------------------------------------- randomized dynamic graphs

struct FuzzGraph {
  std::vector<std::vector<nabbit::Key>> preds;
  std::atomic<long long> checksum{0};
};

class FuzzNode final : public nabbit::TaskGraphNode {
 public:
  explicit FuzzNode(FuzzGraph* g) : g_(g) {}
  void init(nabbit::ExecContext&) override {
    for (nabbit::Key p : g_->preds[key()]) add_predecessor(p);
  }
  void compute(nabbit::ExecContext& ctx) override {
    // Order-insensitive but dependence-sensitive digest: every predecessor
    // must already be computed when we read it.
    long long acc = static_cast<long long>(key()) + 1;
    for (nabbit::Key p : g_->preds[key()]) {
      EXPECT_TRUE(ctx.find(p)->computed());
      acc += static_cast<long long>(p);
    }
    g_->checksum.fetch_add(acc, std::memory_order_relaxed);
  }

 private:
  FuzzGraph* g_;
};

class FuzzSpec final : public nabbit::GraphSpec {
 public:
  FuzzSpec(FuzzGraph* g, std::uint32_t colors) : g_(g), colors_(colors) {}
  nabbit::TaskGraphNode* create(nabbit::NodeArena& arena, nabbit::Key) override {
    return arena.create<FuzzNode>(g_);
  }
  numa::Color color_of(nabbit::Key k) const override {
    return static_cast<numa::Color>(k % colors_);
  }

 private:
  FuzzGraph* g_;
  std::uint32_t colors_;
};

class GraphFuzz : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(GraphFuzz, ExecutorMatchesSerialReference) {
  auto [seed, colored] = GetParam();
  Pcg32 rng(seed, 77);
  const nabbit::Key n = 250 + rng.below(250);

  FuzzGraph g;
  g.preds.resize(n + 1);
  for (nabbit::Key k = 1; k <= n; ++k) {
    g.preds[k].push_back(k - 1);  // spine guarantees one sink
    const std::uint32_t extra = rng.below(4);
    for (std::uint32_t e = 0; e < extra; ++e) {
      nabbit::Key p = rng.next64() % k;
      if (std::find(g.preds[k].begin(), g.preds[k].end(), p) == g.preds[k].end()) {
        g.preds[k].push_back(p);
      }
    }
  }

  // Serial reference result.
  FuzzSpec sspec(&g, 4);
  nabbit::SerialExecutor serial(sspec);
  serial.run(n);
  const long long expect = g.checksum.exchange(0);

  // Parallel run, both engines (the runtime variant chooses executor and
  // steal policy together).
  api::RuntimeOptions opts;
  opts.workers = 4;
  opts.topology = numa::Topology(2, 2);
  opts.seed = seed;
  opts.variant = colored ? api::Variant::kNabbitC : api::Variant::kNabbit;
  api::Runtime rt(opts);
  FuzzSpec pspec(&g, 4);
  api::Execution e = rt.run(pspec, n);
  EXPECT_EQ(g.checksum.load(), expect);
  EXPECT_EQ(e.nodes_computed(), n + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphFuzz,
                         ::testing::Combine(::testing::Values(11u, 22u, 33u, 44u),
                                            ::testing::Bool()));

// -------------------------------------------------- simulator invariants

class SimInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimInvariants, ExecutesEveryNodeCountsEveryAccess) {
  const std::uint64_t seed = GetParam();
  Pcg32 rng(seed, 5);
  sim::TaskDag dag;
  const std::uint32_t n = 150 + rng.below(150);
  for (std::uint32_t v = 0; v < n; ++v) {
    dag.add_node(1.0 + rng.below(20), static_cast<numa::Color>(rng.below(8)));
  }
  // One random predecessor per non-root node (duplicate-free by design).
  for (std::uint32_t v = 1; v < n; ++v) {
    dag.add_edge(static_cast<sim::NodeId>(rng.next64() % v), v);
  }
  ASSERT_TRUE(dag.is_acyclic());

  sim::SimConfig cfg;
  cfg.num_workers = 8;
  cfg.topology = numa::Topology(4, 2);
  cfg.seed = seed;
  sim::SimResult r = sim::simulate(dag, cfg);
  // Conservation: every node executed exactly once.
  EXPECT_EQ(r.locality.nodes, dag.num_nodes());
  EXPECT_EQ(r.locality.pred_accesses, dag.num_edges());
  // Work conservation: makespan cannot beat perfect parallelism over the
  // *local-cost* serial time.
  EXPECT_GE(r.makespan + 1e-9, r.serial_time / 8.0);
  // Remote fractions are percentages.
  EXPECT_GE(r.locality.percent_remote(), 0.0);
  EXPECT_LE(r.locality.percent_remote(), 100.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimInvariants, ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(SimInvariants2, LoopAndStealingExecuteSameNodeSet) {
  auto w = wl::make_workload("mg", wl::SizePreset::kTiny);
  sim::TaskDag dag = w->build_dag(8, nabbit::ColoringMode::kGood);
  sim::SimConfig cfg;
  cfg.num_workers = 8;
  auto rs = sim::simulate(dag, cfg);
  auto rl = sim::simulate_loop(dag, cfg, loop::Schedule::kStatic);
  EXPECT_EQ(rs.locality.nodes, rl.locality.nodes);
  EXPECT_EQ(rs.locality.pred_accesses, rl.locality.pred_accesses);
  EXPECT_DOUBLE_EQ(rs.serial_time, rl.serial_time);
}

// ------------------------------------------- policy counter consistency

TEST(PolicyCounters, AttemptsDominateSuccesses) {
  auto w = wl::make_workload("heat", wl::SizePreset::kTiny);
  harness::SimSweepOptions so;
  for (auto v : {harness::Variant::kNabbit, harness::Variant::kNabbitC}) {
    auto r = harness::run_sim(*w, v, 16, so);
    EXPECT_GE(r.attempts_colored + r.attempts_random,
              r.steals_colored + r.steals_random);
    if (v == harness::Variant::kNabbit) {
      EXPECT_EQ(r.attempts_colored, 0u);  // vanilla never attempts colored
      EXPECT_EQ(r.steals_colored, 0u);
    }
  }
}

TEST(PolicyCounters, RealRuntimeStealAccounting) {
  // Force heavy stealing: many tiny tasks, several workers.
  api::RuntimeOptions opts;
  opts.workers = 4;
  opts.topology = numa::Topology(2, 2);
  api::Runtime rt(opts);
  for (int job = 0; job < 5; ++job) {
    std::atomic<int> n{0};
    rt.run_parallel([&](rt::Worker& w) {
      rt::parallel_for(w, 0, 2000, 1, [&](std::int64_t) {
        n.fetch_add(1, std::memory_order_relaxed);
      });
    });
    EXPECT_EQ(n.load(), 2000);
  }
  auto agg = rt.counters();
  EXPECT_GE(agg.steal_attempts_total(), agg.steals_total());
  EXPECT_GT(agg.tasks_executed, 0u);
}

// ----------------------------------------------- workload num_tasks sync

TEST(DagShape, NumTasksMatchesDagForDagCompleteWorkloads) {
  // For workloads whose dynamic graph is fully reachable from the sink,
  // num_tasks() must equal the exported DAG's node count.
  for (const char* name : {"heat", "fdtd", "life", "sw", "swn2", "mg"}) {
    auto w = wl::make_workload(name, wl::SizePreset::kTiny);
    auto dag = w->build_dag(4, nabbit::ColoringMode::kGood);
    EXPECT_EQ(w->num_tasks(), dag.num_nodes()) << name;
  }
}

TEST(DagShape, DynamicExecutorCreatesExactlyDagNodes) {
  // Heat: the dynamic executor's on-demand creation must reach exactly the
  // nodes the DAG predicts.
  auto w = wl::make_workload("heat", wl::SizePreset::kTiny);
  w->prepare(4);
  api::RuntimeOptions opts;
  opts.workers = 4;
  api::Runtime rt(opts);
  w->run_taskgraph(rt, nabbit::ColoringMode::kGood);
  // (indirect: the checksum tests prove every block ran; here we prove the
  // graph shape via num_tasks == dag nodes, checked above.)
  SUCCEED();
}

}  // namespace
}  // namespace nabbitc
