// Unit tests for src/numa: topology, distribution, penalty, pinning.
#include <gtest/gtest.h>

#include "numa/distribution.h"
#include "numa/penalty.h"
#include "numa/pinning.h"
#include "numa/topology.h"

namespace nabbitc::numa {
namespace {

// ---------------------------------------------------------------- topology

TEST(Topology, PaperMachine) {
  Topology t = Topology::paper();
  EXPECT_EQ(t.domains(), 8u);
  EXPECT_EQ(t.cores_per_domain(), 10u);
  EXPECT_EQ(t.total_cores(), 80u);
}

TEST(Topology, DomainOfCoreIsDomainMajor) {
  Topology t(4, 3);  // 12 cores
  EXPECT_EQ(t.domain_of_core(0), 0u);
  EXPECT_EQ(t.domain_of_core(2), 0u);
  EXPECT_EQ(t.domain_of_core(3), 1u);
  EXPECT_EQ(t.domain_of_core(11), 3u);
  EXPECT_EQ(t.domain_of_core(12), 0u);  // wraps
}

TEST(Topology, WorkerMapping) {
  Topology t(2, 2);
  EXPECT_EQ(t.core_of_worker(0), 0u);
  EXPECT_EQ(t.core_of_worker(3), 3u);
  EXPECT_EQ(t.core_of_worker(4), 0u);  // oversubscribed wraps
  EXPECT_EQ(t.domain_of_worker(2), 1u);
}

TEST(Topology, InvalidColorIsNowhereLocal) {
  Topology t(4, 10);
  for (std::uint32_t w = 0; w < 40; ++w) {
    EXPECT_FALSE(t.is_local(kInvalidColor, w));
  }
  EXPECT_EQ(t.domain_of_color(kInvalidColor), t.domains());
}

TEST(Topology, LocalityWithinDomain) {
  Topology t = Topology::paper();
  // Workers 0..9 share domain 0; color 5 is local to all of them.
  for (std::uint32_t w = 0; w < 10; ++w) EXPECT_TRUE(t.is_local(5, w));
  // ...and remote to everyone else.
  for (std::uint32_t w = 10; w < 80; ++w) EXPECT_FALSE(t.is_local(5, w));
}

TEST(Topology, UniformHasNoRemote) {
  Topology t = Topology::uniform(16);
  for (std::uint32_t w = 0; w < 16; ++w) {
    for (Color c = 0; c < 16; ++c) EXPECT_TRUE(t.is_local(c, w));
  }
}

TEST(Topology, HostIsSingleDomain) {
  Topology t = Topology::host();
  EXPECT_EQ(t.domains(), 1u);
  EXPECT_GE(t.total_cores(), 1u);
}

TEST(Topology, Describe) {
  EXPECT_EQ(Topology(2, 3).describe(), "2 domain(s) x 3 core(s) = 6 cores");
}

TEST(TopologyDeath, RejectsZeroDomains) {
  EXPECT_DEATH(Topology(0, 4), "domain");
}

// ------------------------------------------------------------ distribution

TEST(BlockDistribution, EvenSplit) {
  BlockDistribution d(100, 4);
  EXPECT_EQ(d.owner(0), 0);
  EXPECT_EQ(d.owner(24), 0);
  EXPECT_EQ(d.owner(25), 1);
  EXPECT_EQ(d.owner(99), 3);
  EXPECT_EQ(d.begin_of(1), 25u);
  EXPECT_EQ(d.end_of(1), 50u);
}

TEST(BlockDistribution, UnevenSplitCeilChunks) {
  BlockDistribution d(10, 4);  // chunk = 3: 3,3,3,1
  EXPECT_EQ(d.owner(0), 0);
  EXPECT_EQ(d.owner(2), 0);
  EXPECT_EQ(d.owner(3), 1);
  EXPECT_EQ(d.owner(9), 3);
  EXPECT_EQ(d.end_of(3), 10u);
}

TEST(BlockDistribution, MoreColorsThanItems) {
  BlockDistribution d(3, 8);  // chunk = 1
  EXPECT_EQ(d.owner(0), 0);
  EXPECT_EQ(d.owner(2), 2);
  EXPECT_TRUE(d.begin_of(5) >= d.end_of(5));  // empty trailing colors
}

TEST(BlockDistribution, OwnersAreMonotone) {
  BlockDistribution d(1000, 7);
  Color prev = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    Color c = d.owner(i);
    EXPECT_GE(c, prev);
    EXPECT_LT(c, 7);
    prev = c;
  }
}

TEST(BlockDistribution, MajorityOwner) {
  BlockDistribution d(100, 4);  // chunks of 25
  EXPECT_EQ(d.majority_owner(0, 25), 0);
  EXPECT_EQ(d.majority_owner(20, 30), 0);   // 5/5 tie resolves to first run
  EXPECT_EQ(d.majority_owner(20, 60), 1);   // 5 + 25 + 10
  EXPECT_EQ(d.majority_owner(98, 100), 3);
}

TEST(BlockDistribution, OwnershipPartitionsIndexSpace) {
  BlockDistribution d(777, 13);
  std::uint64_t covered = 0;
  for (Color c = 0; c < 13; ++c) {
    EXPECT_LE(d.begin_of(c), d.end_of(c));
    covered += d.end_of(c) - d.begin_of(c);
    for (auto i = d.begin_of(c); i < d.end_of(c); ++i) EXPECT_EQ(d.owner(i), c);
  }
  EXPECT_EQ(covered, 777u);
}

// ----------------------------------------------------------------- penalty

TEST(Penalty, NodeCost) {
  PenaltyModel p;
  p.remote_factor = 2.0;
  EXPECT_DOUBLE_EQ(p.node_cost(10.0, false), 10.0);
  EXPECT_DOUBLE_EQ(p.node_cost(10.0, true), 20.0);
}

TEST(Penalty, LocalityCountersPercent) {
  LocalityCounters c;
  EXPECT_DOUBLE_EQ(c.percent_remote(), 0.0);
  c.nodes = 8;
  c.remote_nodes = 2;
  c.pred_accesses = 12;
  c.remote_pred_accesses = 3;
  EXPECT_EQ(c.total_accesses(), 20u);
  EXPECT_EQ(c.remote_accesses(), 5u);
  EXPECT_DOUBLE_EQ(c.percent_remote(), 25.0);
}

TEST(Penalty, LocalityCountersMerge) {
  LocalityCounters a, b;
  a.nodes = 1;
  a.remote_nodes = 1;
  b.nodes = 3;
  b.pred_accesses = 4;
  a.merge(b);
  EXPECT_EQ(a.nodes, 4u);
  EXPECT_EQ(a.remote_nodes, 1u);
  EXPECT_EQ(a.pred_accesses, 4u);
}

TEST(Penalty, BusyDelayZeroIsNoop) {
  busy_delay_ns(0);  // must not hang
  SUCCEED();
}

// ----------------------------------------------------------------- pinning

TEST(Pinning, VisibleCpusPositive) { EXPECT_GE(visible_cpus(), 1u); }

TEST(Pinning, PinDoesNotCrash) {
  // May fail in restricted containers; must not crash either way.
  (void)pin_current_thread(0);
  SUCCEED();
}

}  // namespace
}  // namespace nabbitc::numa
