// Tests for the Nabbit task-graph engine: concurrent map, successor lists,
// serial / dynamic / static executors, and execution-protocol invariants.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "api/nabbitc.h"
#include "nabbit/concurrent_map.h"
#include "nabbit/successor_list.h"
#include "support/rng.h"

namespace nabbitc::nabbit {
namespace {

// ---------------------------------------------------------- successor list

class NopNode final : public TaskGraphNode {
 public:
  void init(ExecContext&) override {}
  void compute(ExecContext&) override {}
};

std::vector<TaskGraphNode*> chain_to_vector(SuccessorCell* chain) {
  std::vector<TaskGraphNode*> out;
  for (SuccessorCell* c = chain; c != nullptr; c = c->next) out.push_back(c->node);
  return out;
}

TEST(SuccessorList, AddThenCloseReturnsAll) {
  SuccessorList sl;
  NopNode a, b;
  SuccessorCell cells[2];
  EXPECT_TRUE(sl.try_add(&a, &cells[0]));
  EXPECT_TRUE(sl.try_add(&b, &cells[1]));
  EXPECT_EQ(sl.size(), 2u);
  auto out = chain_to_vector(sl.close_and_take());
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(sl.closed());
}

TEST(SuccessorList, AddAfterCloseFails) {
  SuccessorList sl;
  NopNode a;
  SuccessorCell cell;
  EXPECT_EQ(sl.close_and_take(), nullptr);
  EXPECT_FALSE(sl.try_add(&a, &cell));
  EXPECT_EQ(sl.size(), 0u);
}

TEST(SuccessorList, ConcurrentAddVsCloseLosesNothing) {
  // Every successfully added node must be visible in the taken chain; a
  // failed add means the adder saw the closed sentinel. Repeat to shake
  // races.
  for (int round = 0; round < 50; ++round) {
    SuccessorList sl;
    std::vector<NopNode> nodes(32);
    std::vector<SuccessorCell> cells(32);
    std::atomic<int> added{0};
    std::thread adder([&] {
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (sl.try_add(&nodes[i], &cells[i])) added.fetch_add(1);
      }
    });
    auto taken = chain_to_vector(sl.close_and_take());
    adder.join();
    // Stragglers that added after our close... cannot exist: close happened
    // before join, and failed adds aren't counted.
    EXPECT_EQ(static_cast<int>(taken.size()), added.load());
  }
}

TEST(SuccessorList, ManyAddersRacingOneCloseNoLossNoDuplicate) {
  // Several threads push disjoint node sets while one closer races them:
  // the taken chain must contain exactly the successfully-added nodes,
  // each exactly once, and all post-close adds must fail.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  for (int round = 0; round < 25; ++round) {
    SuccessorList sl;
    std::vector<NopNode> nodes(kThreads * kPerThread);
    std::vector<SuccessorCell> cells(nodes.size());
    std::vector<std::vector<TaskGraphNode*>> added(kThreads);
    std::atomic<bool> go{false};
    std::vector<std::thread> adders;
    for (int t = 0; t < kThreads; ++t) {
      adders.emplace_back([&, t] {
        while (!go.load(std::memory_order_acquire)) {}
        for (int i = 0; i < kPerThread; ++i) {
          const int idx = t * kPerThread + i;
          if (sl.try_add(&nodes[idx], &cells[idx])) {
            added[t].push_back(&nodes[idx]);
          } else {
            // Once closed, every later add must also fail.
            SuccessorCell dead;
            EXPECT_FALSE(sl.try_add(&nodes[idx], &dead));
          }
        }
      });
    }
    go.store(true, std::memory_order_release);
    auto taken = chain_to_vector(sl.close_and_take());
    for (auto& th : adders) th.join();

    std::set<TaskGraphNode*> taken_set(taken.begin(), taken.end());
    EXPECT_EQ(taken_set.size(), taken.size()) << "duplicate successor";
    std::size_t total_added = 0;
    for (const auto& v : added) {
      total_added += v.size();
      for (TaskGraphNode* n : v) EXPECT_TRUE(taken_set.count(n)) << "lost successor";
    }
    EXPECT_EQ(taken.size(), total_added);
  }
}

// ----------------------------------------------------------- concurrent map

class KeyNode final : public TaskGraphNode {
 public:
  void init(ExecContext&) override {}
  void compute(ExecContext&) override {}
};

TEST(ConcurrentMap, InsertOrGetCreatesOnce) {
  ConcurrentNodeMap map(16);
  auto [n1, c1] = map.insert_or_get(7, [](NodeArena& a, Key) { return a.create<KeyNode>(); });
  auto [n2, c2] =
      map.insert_or_get(7, [](NodeArena& a, Key) { return a.create<KeyNode>(); });
  EXPECT_TRUE(c1);
  EXPECT_FALSE(c2);
  EXPECT_EQ(n1, n2);
  EXPECT_EQ(map.size(), 1u);
}

TEST(ConcurrentMap, FindMissingIsNull) {
  ConcurrentNodeMap map(16);
  EXPECT_EQ(map.find(123), nullptr);
  map.insert_or_get(123, [](NodeArena& a, Key) { return a.create<KeyNode>(); });
  EXPECT_NE(map.find(123), nullptr);
  EXPECT_EQ(map.find(124), nullptr);
}

TEST(ConcurrentMap, HandlesKeyZeroAndMax) {
  ConcurrentNodeMap map(4);
  map.insert_or_get(0, [](NodeArena& a, Key) { return a.create<KeyNode>(); });
  map.insert_or_get(~Key{0}, [](NodeArena& a, Key) { return a.create<KeyNode>(); });
  EXPECT_NE(map.find(0), nullptr);
  EXPECT_NE(map.find(~Key{0}), nullptr);
  EXPECT_EQ(map.size(), 2u);
}

TEST(ConcurrentMap, GrowsBeyondInitialCapacity) {
  ConcurrentNodeMap map(4);  // tiny per-shard capacity
  for (Key k = 0; k < 5000; ++k) {
    map.insert_or_get(k, [](NodeArena& a, Key) { return a.create<KeyNode>(); });
  }
  EXPECT_EQ(map.size(), 5000u);
  for (Key k = 0; k < 5000; ++k) ASSERT_NE(map.find(k), nullptr) << k;
}

TEST(ConcurrentMap, ForEachVisitsEverything) {
  ConcurrentNodeMap map(16);
  for (Key k = 100; k < 200; ++k) {
    map.insert_or_get(k, [](NodeArena& a, Key) { return a.create<KeyNode>(); });
  }
  std::set<Key> seen;
  map.for_each([&](Key k, TaskGraphNode*) { seen.insert(k); });
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 100u);
}

TEST(ConcurrentMap, ConcurrentInsertOrGetExactlyOneWinner) {
  constexpr int kThreads = 4;
  constexpr Key kKeys = 2000;
  ConcurrentNodeMap map(64);
  std::atomic<int> creations{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      Pcg32 rng(t, 5);
      for (int i = 0; i < 20000; ++i) {
        Key k = rng.next() % kKeys;
        auto [node, created] = map.insert_or_get(k, [](NodeArena& a, Key) { return a.create<KeyNode>(); });
        ASSERT_NE(node, nullptr);
        if (created) creations.fetch_add(1);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(map.size(), static_cast<std::size_t>(creations.load()));
  EXPECT_LE(map.size(), static_cast<std::size_t>(kKeys));
}

TEST(ConcurrentMap, CacheLinePaddedNodesAreAlignedInSlabs) {
  struct alignas(64) PaddedNode final : TaskGraphNode {
    std::uint64_t payload[8];
    void init(ExecContext&) override {}
    void compute(ExecContext&) override {}
  };
  ConcurrentNodeMap map(256);
  for (Key k = 0; k < 256; ++k) {
    auto [n, created] = map.insert_or_get(
        k, [](NodeArena& a, Key) { return a.create<PaddedNode>(); });
    ASSERT_TRUE(created);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(n) % 64, 0u) << "key " << k;
  }
}

TEST(ConcurrentMap, RaceLoserNeverConstructsANode) {
  // The slot is reserved under the shard lock, so the factory runs exactly
  // once per key no matter how many threads race insert_or_get: node
  // constructions must equal map entries. (The previous implementation let
  // every racer construct a speculative node and destroy it on losing.)
  struct CountingNode final : TaskGraphNode {
    explicit CountingNode(std::atomic<int>* c) { c->fetch_add(1); }
    void init(ExecContext&) override {}
    void compute(ExecContext&) override {}
  };
  constexpr int kThreads = 4;
  constexpr Key kKeys = 512;
  ConcurrentNodeMap map(kKeys);
  std::atomic<int> constructions{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (Key k = 0; k < kKeys; ++k) {
        map.insert_or_get(k, [&](NodeArena& a, Key) {
          return a.create<CountingNode>(&constructions);
        });
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(constructions.load(), static_cast<int>(kKeys));
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kKeys));
}

// ------------------------------------------------------------ test graphs

/// Chain with a fan: key k depends on k-1 and (for even k) k/2.
/// Records compute order for protocol checks.
struct OrderRecorder {
  std::mutex mu;
  std::vector<Key> order;
  std::atomic<int> computes{0};

  void record(Key k) {
    computes.fetch_add(1);
    std::lock_guard<std::mutex> lk(mu);
    order.push_back(k);
  }
};

class RecordingNode final : public TaskGraphNode {
 public:
  explicit RecordingNode(OrderRecorder* rec) : rec_(rec) {}
  void init(ExecContext&) override {
    Key k = key();
    if (k > 0) {
      add_predecessor(k - 1);
      if (k % 2 == 0 && k / 2 != k - 1) add_predecessor(k / 2);
    }
  }
  void compute(ExecContext&) override { rec_->record(key()); }

 private:
  OrderRecorder* rec_;
};

class RecordingSpec final : public GraphSpec {
 public:
  explicit RecordingSpec(OrderRecorder* rec) : rec_(rec) {}
  TaskGraphNode* create(NodeArena& arena, Key) override {
    return arena.create<RecordingNode>(rec_);
  }
  numa::Color color_of(Key k) const override {
    return static_cast<numa::Color>(k % 4);
  }

 private:
  OrderRecorder* rec_;
};

void expect_topological(const std::vector<Key>& order, Key n) {
  std::vector<int> pos(n + 1, -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[order[i]] = static_cast<int>(i);
  }
  for (Key k = 0; k <= n; ++k) ASSERT_GE(pos[k], 0) << "node " << k << " missing";
  for (Key k = 1; k <= n; ++k) {
    EXPECT_LT(pos[k - 1], pos[k]);
    if (k % 2 == 0 && k / 2 != k - 1) {
      EXPECT_LT(pos[k / 2], pos[k]);
    }
  }
}

// ---------------------------------------------------------- serial executor

TEST(SerialExecutor, ComputesAllInTopologicalOrder) {
  OrderRecorder rec;
  RecordingSpec spec(&rec);
  SerialExecutor ex(spec);
  ex.run(300);
  EXPECT_EQ(rec.computes.load(), 301);
  EXPECT_EQ(ex.nodes_computed(), 301u);
  expect_topological(rec.order, 300);
}

TEST(SerialExecutor, FindReturnsComputedNodes) {
  OrderRecorder rec;
  RecordingSpec spec(&rec);
  SerialExecutor ex(spec);
  ex.run(10);
  for (Key k = 0; k <= 10; ++k) {
    auto* n = ex.find(k);
    ASSERT_NE(n, nullptr);
    EXPECT_TRUE(n->computed());
    EXPECT_EQ(n->key(), k);
    EXPECT_EQ(n->color(), static_cast<numa::Color>(k % 4));
  }
  EXPECT_EQ(ex.find(11), nullptr);
}

TEST(SerialExecutor, RerunIsNoop) {
  OrderRecorder rec;
  RecordingSpec spec(&rec);
  SerialExecutor ex(spec);
  ex.run(5);
  int first = rec.computes.load();
  ex.run(5);
  EXPECT_EQ(rec.computes.load(), first);
}

class CyclicSpec final : public GraphSpec {
 public:
  TaskGraphNode* create(NodeArena& arena, Key) override {
    class N final : public TaskGraphNode {
      void init(ExecContext&) override { add_predecessor((key() + 1) % 3); }
      void compute(ExecContext&) override {}
    };
    return arena.create<N>();
  }
};

TEST(SerialExecutorDeath, DetectsCycle) {
  CyclicSpec spec;
  SerialExecutor ex(spec);
  EXPECT_DEATH(ex.run(0), "cycle");
}

// --------------------------------------------------------- dynamic executor

class DynExecTest : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(DynExecTest, ComputesEveryNodeExactlyOnceInOrder) {
  auto [workers, colored] = GetParam();
  api::RuntimeOptions opts;
  opts.workers = static_cast<std::uint32_t>(workers);
  opts.topology = numa::Topology(2, 2);
  opts.variant = colored ? api::Variant::kNabbitC : api::Variant::kNabbit;
  api::Runtime rt(opts);

  OrderRecorder rec;
  RecordingSpec spec(&rec);
  api::Execution e = rt.run(spec, 200);
  EXPECT_EQ(rec.computes.load(), 201);
  EXPECT_EQ(e.nodes_computed(), 201u);
  EXPECT_EQ(e.nodes_created(), 201u);
  expect_topological(rec.order, 200);
}

INSTANTIATE_TEST_SUITE_P(WorkersAndPolicies, DynExecTest,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Bool()));

TEST(DynamicExecutor, OnDemandOnlyCreatesReachableNodes) {
  api::RuntimeOptions opts;
  opts.workers = 2;
  api::Runtime rt(opts);
  OrderRecorder rec;
  RecordingSpec spec(&rec);
  // Sink 9: reachable set is {9,8,...,0} via k-1 edges plus halves — but
  // nothing beyond 9 may be created.
  api::Execution e = rt.run(spec, 9);
  EXPECT_EQ(e.find(10), nullptr);
  EXPECT_NE(e.find(9), nullptr);
  EXPECT_EQ(e.nodes_created(), 10u);
}

TEST(DynamicExecutor, RandomDagsStress) {
  // Random DAGs: node k depends on a few random nodes < k. Run on a few
  // worker counts with both policies; every node computed exactly once.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Pcg32 rng(seed, 31);
    const Key n = 400;
    std::vector<std::vector<Key>> preds(n + 1);
    for (Key k = 1; k <= n; ++k) {
      preds[k].push_back(rng.next64() % k);  // stay connected-ish
      if (rng.uniform() < 0.5) preds[k].push_back(rng.next64() % k);
      if (k > 0) preds[k].push_back(k - 1);  // guarantee a single sink
    }

    struct RandomNode final : TaskGraphNode {
      const std::vector<Key>* my_preds;
      std::atomic<int>* computes;
      void init(ExecContext&) override {
        for (Key p : *my_preds) add_predecessor(p);
      }
      void compute(ExecContext& ctx) override {
        for (Key p : *my_preds) {
          auto* pn = ctx.find(p);
          ASSERT_NE(pn, nullptr);
          EXPECT_TRUE(pn->computed());
        }
        computes->fetch_add(1);
      }
    };
    struct RandomSpec final : GraphSpec {
      std::vector<std::vector<Key>>* preds;
      std::atomic<int>* computes;
      TaskGraphNode* create(NodeArena& arena, Key k) override {
        auto* node = arena.create<RandomNode>();
        node->my_preds = &(*preds)[k];
        node->computes = computes;
        return node;
      }
      numa::Color color_of(Key k) const override {
        return static_cast<numa::Color>(k % 3);
      }
    };

    std::atomic<int> computes{0};
    RandomSpec spec;
    spec.preds = &preds;
    spec.computes = &computes;

    api::RuntimeOptions opts;
    opts.workers = 4;
    opts.topology = numa::Topology(2, 2);
    opts.seed = seed;
    opts.variant = api::Variant::kNabbit;
    api::Runtime rt(opts);
    rt.run(spec, n);
    EXPECT_EQ(computes.load(), static_cast<int>(n) + 1);
  }
}

TEST(DynamicExecutor, LocalityCountersPopulated) {
  api::RuntimeOptions opts;
  opts.workers = 4;
  opts.topology = numa::Topology(2, 2);
  api::Runtime rt(opts);
  OrderRecorder rec;
  RecordingSpec spec(&rec);
  rt.run(spec, 100);
  auto agg = rt.counters();
  EXPECT_EQ(agg.locality.nodes, 101u);
  EXPECT_GT(agg.locality.pred_accesses, 0u);
}

TEST(DynamicExecutor, LocalityCountingCanBeDisabled) {
  api::RuntimeOptions opts;
  opts.workers = 2;
  opts.count_locality = false;
  api::Runtime rt(opts);
  OrderRecorder rec;
  RecordingSpec spec(&rec);
  rt.run(spec, 50);
  EXPECT_EQ(rt.counters().locality.nodes, 0u);
}

TEST(DynamicExecutor, SingleNodeGraph) {
  api::RuntimeOptions opts;
  opts.workers = 2;
  api::Runtime rt(opts);
  OrderRecorder rec;
  RecordingSpec spec(&rec);
  rt.run(spec, 0);  // node 0 has no predecessors
  EXPECT_EQ(rec.computes.load(), 1);
}

// ---------------------------------------------------------- static executor

TEST(StaticExecutor, DiamondGraph) {
  api::RuntimeOptions opts;
  opts.workers = 4;
  opts.variant = api::Variant::kNabbit;  // plain static executor
  api::Runtime rt(opts);
  auto exp = rt.static_graph();
  StaticExecutor& ex = *exp;

  OrderRecorder rec;
  struct N final : TaskGraphNode {
    OrderRecorder* rec;
    std::vector<Key> ps;
    void init(ExecContext&) override {
      for (Key p : ps) add_predecessor(p);
    }
    void compute(ExecContext&) override { rec->record(key()); }
  };
  auto mk = [&](std::vector<Key> ps) {
    auto n = std::make_unique<N>();
    n->rec = &rec;
    n->ps = std::move(ps);
    return n;
  };
  ex.add_node(0, 0, mk({}));
  ex.add_node(1, 1, mk({0}));
  ex.add_node(2, 2, mk({0}));
  ex.add_node(3, 3, mk({1, 2}));
  ex.prepare();
  EXPECT_EQ(ex.num_roots(), 1u);
  ex.run();
  ASSERT_EQ(rec.order.size(), 4u);
  EXPECT_EQ(rec.order.front(), 0u);
  EXPECT_EQ(rec.order.back(), 3u);
  for (Key k = 0; k < 4; ++k) EXPECT_TRUE(ex.find(k)->computed());
}

TEST(StaticExecutor, ResetAllowsRerun) {
  api::RuntimeOptions opts;
  opts.workers = 2;
  opts.variant = api::Variant::kNabbit;
  api::Runtime rt(opts);
  auto exp = rt.static_graph();
  StaticExecutor& ex = *exp;
  std::atomic<int> computes{0};
  struct N final : TaskGraphNode {
    std::atomic<int>* c;
    Key pred;
    bool has_pred;
    void init(ExecContext&) override {
      if (has_pred) add_predecessor(pred);
    }
    void compute(ExecContext&) override { c->fetch_add(1); }
  };
  for (Key k = 0; k < 20; ++k) {
    auto n = std::make_unique<N>();
    n->c = &computes;
    n->has_pred = k > 0;
    n->pred = k > 0 ? k - 1 : 0;
    ex.add_node(k, static_cast<numa::Color>(k % 2), std::move(n));
  }
  ex.prepare();
  ex.run();
  EXPECT_EQ(computes.load(), 20);
  ex.reset();
  ex.run();
  EXPECT_EQ(computes.load(), 40);
}

TEST(StaticExecutorDeath, MissingPredecessorAborts) {
  api::RuntimeOptions opts;
  opts.workers = 1;
  opts.variant = api::Variant::kNabbit;
  api::Runtime rt(opts);
  auto exp = rt.static_graph();
  StaticExecutor& ex = *exp;
  struct N final : TaskGraphNode {
    void init(ExecContext&) override { add_predecessor(999); }
    void compute(ExecContext&) override {}
  };
  ex.add_node(0, 0, std::make_unique<N>());
  EXPECT_DEATH(ex.prepare(), "never added");
}

TEST(StaticExecutorDeath, DuplicateKeyAborts) {
  api::RuntimeOptions opts;
  opts.workers = 1;
  opts.variant = api::Variant::kNabbit;
  api::Runtime rt(opts);
  auto exp = rt.static_graph();
  exp->add_node(1, 0, std::make_unique<NopNode>());
  EXPECT_DEATH(exp->add_node(1, 0, std::make_unique<NopNode>()), "duplicate");
}

// -------------------------------------------------------------------- keys

TEST(Keys, PackUnpackRoundTrip) {
  Key k = key_pack(0xdeadbeef, 0x12345678);
  EXPECT_EQ(key_major(k), 0xdeadbeefu);
  EXPECT_EQ(key_minor(k), 0x12345678u);
  EXPECT_EQ(key_pack(0, 0), 0u);
}

}  // namespace
}  // namespace nabbitc::nabbit

namespace nabbitc::nabbit {
namespace {

// Regression: the created-predecessor path of try_init_compute must
// register the parent's dependence when the recursive initialization leaves
// the predecessor pending (one of *its* preds still executing elsewhere).
// A 2-D wavefront with a steep cost gradient reproduces the original bug
// within a few rounds; see executor.cpp's try_init_compute comment.
class GradientWavefrontNode final : public TaskGraphNode {
 public:
  void init(ExecContext&) override {
    const std::uint32_t bi = key_major(key()), bj = key_minor(key());
    if (bj > 0) add_predecessor(key_pack(bi, bj - 1));
    if (bi > 0) add_predecessor(key_pack(bi - 1, bj));
  }
  void compute(ExecContext& ctx) override {
    volatile long sink = 0;
    const long work = 2000L * (1 + key_major(key()) + key_minor(key()));
    for (long i = 0; i < work; ++i) sink = sink + i;
    for (Key p : predecessors()) {
      TaskGraphNode* pn = ctx.find(p);
      ASSERT_NE(pn, nullptr);
      ASSERT_TRUE(pn->computed());
    }
  }
};

class GradientWavefrontSpec final : public GraphSpec {
 public:
  TaskGraphNode* create(NodeArena& arena, Key) override {
    return arena.create<GradientWavefrontNode>();
  }
  numa::Color color_of(Key k) const override {
    return static_cast<numa::Color>(key_major(k) / 2);
  }
};

TEST(DynamicExecutorRegression, CreatedPendingPredecessorIsRegistered) {
  for (std::uint64_t round = 0; round < 40; ++round) {
    api::RuntimeOptions opts;
    opts.workers = 4;
    opts.topology = numa::Topology(2, 2);
    opts.variant = api::Variant::kNabbitC;
    opts.seed = round;
    api::Runtime rt(opts);
    GradientWavefrontSpec spec;
    api::Execution e = rt.run(spec, key_pack(7, 7));
    ASSERT_EQ(e.nodes_computed(), 64u) << "round " << round;
  }
}

}  // namespace
}  // namespace nabbitc::nabbit
