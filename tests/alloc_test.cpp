// Heap-allocation regression tests for the executor hot path.
//
// This binary overrides the global allocation functions with counting
// versions so tests can assert that the steady-state node path of
// DynamicExecutor is allocation-free: node storage comes from the map's
// per-shard slabs, predecessor keys live inline in the node (SmallVec),
// successor-list edges use the node's inline cells, and task frames come
// from the workers' job arenas. The only heap traffic left is O(1)-ish
// bookkeeping (slab/arena block refills, the job closure), which grows
// sublinearly in the node count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>

#include "api/nabbitc.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t n) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) std::abort();
  return p;
}

void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, n ? n : 1) != 0) {
    std::abort();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace nabbitc::nabbit {
namespace {

/// 2-D grid with the stencil dependence shape: preds = left and up.
struct GridNode final : TaskGraphNode {
  std::atomic<std::uint64_t>* acc;
  explicit GridNode(std::atomic<std::uint64_t>* a) : acc(a) {}
  void init(ExecContext&) override {
    const std::uint32_t i = key_major(key()), j = key_minor(key());
    if (i > 0) add_predecessor(key_pack(i - 1, j));
    if (j > 0) add_predecessor(key_pack(i, j - 1));
  }
  void compute(ExecContext&) override {
    acc->fetch_add(key(), std::memory_order_relaxed);
  }
};

struct GridSpec final : GraphSpec {
  std::atomic<std::uint64_t>* acc;
  std::uint32_t n;
  GridSpec(std::atomic<std::uint64_t>* a, std::uint32_t side) : acc(a), n(side) {}
  TaskGraphNode* create(NodeArena& arena, Key) override {
    return arena.create<GridNode>(acc);
  }
  std::size_t expected_nodes() const override { return std::size_t{n} * n; }
};

api::Runtime make_runtime() {
  api::RuntimeOptions opts;
  opts.workers = 2;
  opts.variant = api::Variant::kNabbit;
  opts.count_locality = false;
  return api::Runtime(opts);
}

/// Allocations for ONE whole submission through the façade — including the
/// per-execution state the Runtime builds (executor, node map shards): that
/// is the real steady-state cost an embedder pays per submit().
std::uint64_t count_allocs_for_submission(api::Runtime& rt, std::uint32_t side) {
  std::atomic<std::uint64_t> acc{0};
  GridSpec spec(&acc, side);
  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_release);
  api::Execution e = rt.run(spec, key_pack(side - 1, side - 1));
  g_counting.store(false, std::memory_order_release);
  EXPECT_EQ(e.nodes_computed(), std::uint64_t{side} * side);
  return g_allocs.load(std::memory_order_relaxed);
}

TEST(AllocationFreeHotPath, DynamicExecutorSteadyStateDoesNotAllocPerNode) {
  auto rt = make_runtime();

  // Warm-up submission: grows the workers' job arenas so the measured run
  // reuses their blocks.
  count_allocs_for_submission(rt, 48);

  const std::uint32_t side = 48;  // 2304 nodes
  const std::uint64_t nodes = std::uint64_t{side} * side;
  const std::uint64_t allocs = count_allocs_for_submission(rt, side);

  // Remaining heap traffic: per-submission O(1) state (64 map shards +
  // execution bookkeeping), slab first blocks, and stray libc internals —
  // all far below one allocation per four nodes. The pre-pooling executor
  // performed ~3 heap allocations per node (node object, predecessor
  // vector, successor vector + its notify copy), i.e. ~7000 here.
  EXPECT_LT(allocs, nodes / 4) << "hot path is heap-allocating per node again";
}

TEST(AllocationFreeHotPath, AllocationsDoNotScaleWithNodeCount) {
  auto rt = make_runtime();
  count_allocs_for_submission(rt, 64);  // warm-up

  const std::uint64_t small = count_allocs_for_submission(rt, 32);   // 1024 nodes
  const std::uint64_t large = count_allocs_for_submission(rt, 64);   // 4096 nodes
  // 4x the nodes must cost well under 4x the allocations: only block-grain
  // bookkeeping may grow. Generous slack (2x + 64) keeps this robust to
  // slab/arena refill boundaries while still failing for any per-node
  // allocation (which would add >= 3072).
  EXPECT_LT(large, 2 * small + 64)
      << "allocations scale with node count (small=" << small
      << ", large=" << large << ")";
}

TEST(AllocationFreeHotPath, SteadyStateSubmissionsStayAllocationFreePerNode) {
  // One persistent Runtime serving submission after submission (the
  // embedding steady state): per-submission heap traffic must stay at the
  // O(1) execution-state constant — it may not grow over time (arenas are
  // recycled at quiescence) and may not scale with the node count.
  auto rt = make_runtime();
  const std::uint32_t side = 48;  // 2304 nodes per submission
  count_allocs_for_submission(rt, side);  // warm-up

  std::uint64_t first = 0, last = 0, worst = 0;
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t a = count_allocs_for_submission(rt, side);
    if (i == 0) first = a;
    last = a;
    worst = std::max(worst, a);
  }
  const std::uint64_t nodes = std::uint64_t{side} * side;
  EXPECT_LT(worst, nodes / 4) << "a steady-state submission allocated per node";
  // No drift: later submissions reuse recycled arenas/slabs; only small
  // scheduling-dependent refill noise is tolerated.
  EXPECT_LE(last, first + 64)
      << "per-submission allocations grow over time (first=" << first
      << ", last=" << last << ")";
}

TEST(AllocationFreeHotPath, BatchSubmissionSteadyStateIsAllocationFree) {
  // The batched serving hot path: at batch <= BatchHandle::kInlineItems the
  // handle embeds its instance/job arrays, acquire_batch pops pooled
  // instances under one freelist lock, the MPSC submit ring links the jobs
  // intrusively (no queue nodes), and wait_all parks on the rendezvous
  // embedded in the handle — so a steady-state submit_batch + wait_all
  // round trip performs ZERO heap allocations, stricter than the per-node
  // bounds above.
  auto rt = make_runtime();
  constexpr std::uint32_t kSide = 12;
  constexpr std::size_t kBatch = api::BatchHandle::kInlineItems;
  std::atomic<std::uint64_t> acc{0};
  GridSpec spec(&acc, kSide);
  auto plan =
      rt.compile(spec, key_pack(kSide - 1, kSide - 1),
                 /*reserve_instances=*/kBatch);

  // Warm up: pool depth, worker frame arenas, lane inboxes.
  for (int i = 0; i < 4; ++i) {
    auto warm = rt.submit_batch(*plan, kBatch);
    warm.wait_all();
  }
  rt.wait_idle();

  // "Steady state" means the workers' frame arenas reached their high
  // watermark — but with 32 jobs in flight, how much frame storage each
  // worker needs depends on how the steal lottery splits the batch, so no
  // fixed warm-up count reaches the watermark deterministically (under
  // tsan's scheduling jitter a fixed 4 rounds flaked ~40% of runs). The
  // arena only ever grows toward the watermark and never shrinks, so:
  // retry the counting window until one runs with NO watermark movement —
  // guaranteed to happen eventually — and require THAT window to be
  // allocation-free. A window that allocates without growing the arena is
  // a genuine hot-path regression and fails immediately.
  constexpr int kRounds = 4;
  constexpr int kMaxAttempts = 50;
  int attempts = 0;
  std::size_t completed = 0;
  std::uint64_t allocs = 0;
  for (; attempts < kMaxAttempts; ++attempts) {
    const std::size_t arena_before = rt.arena_bytes();
    completed = 0;
    g_allocs.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_release);
    for (int i = 0; i < kRounds; ++i) {
      auto batch = rt.submit_batch(*plan, kBatch);
      batch.wait_all();
      // No gtest assertions inside the counting window (they allocate);
      // tally plain counters and check after.
      for (std::size_t j = 0; j < kBatch; ++j) {
        completed += batch.status(j).state == api::ExecStatus::kCompleted;
      }
    }
    g_counting.store(false, std::memory_order_release);
    allocs = g_allocs.load(std::memory_order_relaxed);
    EXPECT_EQ(completed, kRounds * kBatch);
    if (rt.arena_bytes() == arena_before) break;  // watermark reached
  }
  ASSERT_LT(attempts, kMaxAttempts)
      << "frame arenas never stopped growing across " << kMaxAttempts
      << " windows";
  EXPECT_EQ(allocs, 0u) << "steady-state submit_batch heap-allocated";
  std::uint64_t per_run = 0;
  for (std::uint32_t i = 0; i < kSide; ++i) {
    for (std::uint32_t j = 0; j < kSide; ++j) per_run += key_pack(i, j);
  }
  EXPECT_EQ(acc.load(),
            per_run * (4 + (attempts + 1) * kRounds) * kBatch);
}

}  // namespace
}  // namespace nabbitc::nabbit
