// Tests for the NabbitC color layer: coloring modes, colored spawning
// (morphing continuations), colored executors, and locality behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <vector>

#include "api/nabbitc.h"
#include "nabbitc/coloring.h"
#include "nabbitc/spawn_colors.h"

namespace nabbitc::nabbit {
namespace {

// ---------------------------------------------------------------- coloring

TEST(Coloring, GoodIsIdentity) {
  for (numa::Color c = 0; c < 8; ++c) {
    EXPECT_EQ(apply_coloring(c, ColoringMode::kGood, 8), c);
  }
}

TEST(Coloring, BadIsValidButDifferent) {
  const std::uint32_t workers = 8;
  for (numa::Color c = 0; c < 8; ++c) {
    numa::Color bad = apply_coloring(c, ColoringMode::kBad, workers);
    EXPECT_GE(bad, 0);
    EXPECT_LT(bad, static_cast<numa::Color>(workers));
    EXPECT_NE(bad, c);
  }
}

TEST(Coloring, BadLandsInDifferentDomain) {
  // With >= 2 domains, the half-machine rotation must cross domains.
  numa::Topology topo(4, 2);  // 8 workers, 4 domains
  for (numa::Color c = 0; c < 8; ++c) {
    numa::Color bad = apply_coloring(c, ColoringMode::kBad, 8);
    EXPECT_NE(topo.domain_of_color(bad), topo.domain_of_color(c));
  }
}

TEST(Coloring, BadIsPermutation) {
  std::vector<int> seen(8, 0);
  for (numa::Color c = 0; c < 8; ++c) {
    ++seen[static_cast<std::size_t>(apply_coloring(c, ColoringMode::kBad, 8))];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(Coloring, InvalidIsNoWorkersColor) {
  EXPECT_EQ(apply_coloring(3, ColoringMode::kInvalid, 8), numa::kInvalidColor);
  EXPECT_EQ(apply_coloring(0, ColoringMode::kInvalid, 1), numa::kInvalidColor);
}

TEST(Coloring, SingleWorkerBadIsIdentity) {
  EXPECT_EQ(apply_coloring(0, ColoringMode::kBad, 1), 0);
}

TEST(Coloring, Names) {
  EXPECT_STREQ(coloring_name(ColoringMode::kGood), "good");
  EXPECT_STREQ(coloring_name(ColoringMode::kBad), "bad");
  EXPECT_STREQ(coloring_name(ColoringMode::kInvalid), "invalid");
}

// ------------------------------------------------------------ spawn_colored

struct ColoredItem {
  int id;
  numa::Color color;
};

TEST(SpawnColored, ExecutesEveryItemOnce) {
  api::RuntimeOptions opts;
  opts.workers = 4;
  opts.topology = numa::Topology(2, 2);
  api::Runtime rt(opts);

  std::vector<std::atomic<int>> hits(64);
  std::vector<ColoredItem> items;
  for (int i = 0; i < 64; ++i) items.push_back({i, static_cast<numa::Color>(i % 4)});

  struct Leaf {
    std::vector<std::atomic<int>>* hits;
    void operator()(rt::Worker&, const ColoredItem& it) const {
      (*hits)[static_cast<std::size_t>(it.id)].fetch_add(1);
    }
  };
  rt.run_parallel([&](rt::Worker& w) {
    rt::TaskGroup g;
    spawn_colored(
        w, g, items.data(), items.size(),
        [](const ColoredItem& it) { return it.color; }, Leaf{&hits});
    g.wait(w);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SpawnColored, SingleWorkerExecutesOwnColorFirst) {
  // The morphing order on worker 0 (color 0) must run all color-0 items
  // before any other color (single worker => no steals disturb the order).
  api::RuntimeOptions opts;
  opts.workers = 1;
  api::Runtime rt(opts);

  std::mutex mu;
  std::vector<numa::Color> order;
  std::vector<ColoredItem> items;
  // Colors deliberately interleaved.
  for (int i = 0; i < 24; ++i) items.push_back({i, static_cast<numa::Color>(i % 3)});

  struct Leaf {
    std::mutex* mu;
    std::vector<numa::Color>* order;
    void operator()(rt::Worker&, const ColoredItem& it) const {
      std::lock_guard<std::mutex> lk(*mu);
      order->push_back(it.color);
    }
  };
  rt.run_parallel([&](rt::Worker& w) {
    rt::TaskGroup g;
    spawn_colored(
        w, g, items.data(), items.size(),
        [](const ColoredItem& it) { return it.color; }, Leaf{&mu, &order});
    g.wait(w);
  });
  ASSERT_EQ(order.size(), 24u);
  // The first 8 executed items must all be color 0 (the worker's color).
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], 0);
}

TEST(SpawnColored, EmptyAndSingleton) {
  api::RuntimeOptions opts;
  opts.workers = 2;
  api::Runtime rt(opts);
  std::atomic<int> n{0};
  struct Leaf {
    std::atomic<int>* n;
    void operator()(rt::Worker&, const ColoredItem&) const { n->fetch_add(1); }
  };
  std::vector<ColoredItem> one{{7, 1}};
  rt.run_parallel([&](rt::Worker& w) {
    rt::TaskGroup g;
    spawn_colored(
        w, g, one.data(), 0, [](const ColoredItem& it) { return it.color; },
        Leaf{&n});
    spawn_colored(
        w, g, one.data(), 1, [](const ColoredItem& it) { return it.color; },
        Leaf{&n});
    g.wait(w);
  });
  EXPECT_EQ(n.load(), 1);
}

TEST(SpawnColored, AllInvalidColorsStillExecute) {
  api::RuntimeOptions opts;
  opts.workers = 3;
  api::Runtime rt(opts);
  std::atomic<int> n{0};
  std::vector<ColoredItem> items;
  for (int i = 0; i < 32; ++i) items.push_back({i, numa::kInvalidColor});
  struct Leaf {
    std::atomic<int>* n;
    void operator()(rt::Worker&, const ColoredItem&) const { n->fetch_add(1); }
  };
  rt.run_parallel([&](rt::Worker& w) {
    rt::TaskGroup g;
    spawn_colored(
        w, g, items.data(), items.size(),
        [](const ColoredItem& it) { return it.color; }, Leaf{&n});
    g.wait(w);
  });
  EXPECT_EQ(n.load(), 32);
}

// ------------------------------------------------------- colored executors

/// Wide two-level graph: sink depends on `width` independent nodes spread
/// over all colors; records which worker executed each node.
struct WideGraphState {
  std::uint32_t width = 0;
  std::uint32_t colors = 1;
  std::mutex mu;
  std::map<Key, std::uint32_t> executed_by;
};

class WideNode final : public TaskGraphNode {
 public:
  explicit WideNode(WideGraphState* st) : st_(st) {}
  void init(ExecContext&) override {
    if (key() == 0) {  // sink
      for (std::uint32_t i = 1; i <= st_->width; ++i) add_predecessor(i);
    }
  }
  void compute(ExecContext& ctx) override {
    std::lock_guard<std::mutex> lk(st_->mu);
    st_->executed_by[key()] = ctx.worker().id();
  }

 private:
  WideGraphState* st_;
};

class WideSpec final : public GraphSpec {
 public:
  explicit WideSpec(WideGraphState* st, ColoringMode mode)
      : st_(st), mode_(mode) {}
  TaskGraphNode* create(NodeArena& arena, Key) override {
    return arena.create<WideNode>(st_);
  }
  numa::Color color_of(Key k) const override {
    return apply_coloring(data_color_of(k), mode_, st_->colors);
  }
  numa::Color data_color_of(Key k) const override {
    return k == 0 ? 0 : static_cast<numa::Color>((k - 1) % st_->colors);
  }

 private:
  WideGraphState* st_;
  ColoringMode mode_;
};

class ColoredExecTest : public ::testing::TestWithParam<ColoringMode> {};

TEST_P(ColoredExecTest, AllColoringsComplete) {
  api::RuntimeOptions opts;
  opts.workers = 4;
  opts.topology = numa::Topology(2, 2);
  auto tuning = rt::StealPolicy::nabbitc();
  tuning.first_steal_max_attempts = 256;  // keep invalid-coloring runs fast
  opts.steal_tuning = tuning;
  api::Runtime rt(opts);

  WideGraphState st;
  st.width = 200;
  st.colors = 4;
  WideSpec spec(&st, GetParam());
  rt.run(spec, 0);
  EXPECT_EQ(st.executed_by.size(), 201u);
}

INSTANTIATE_TEST_SUITE_P(Colorings, ColoredExecTest,
                         ::testing::Values(ColoringMode::kGood, ColoringMode::kBad,
                                           ColoringMode::kInvalid));

TEST(ColoredExecutor, GoodColoringKeepsLocalityOnSingleWorkerPerColor) {
  // With 1 worker there is no stealing: every node executes on worker 0 and
  // the locality counters must classify nodes by color correctly.
  api::RuntimeOptions opts;
  opts.workers = 1;
  opts.topology = numa::Topology(1, 1);
  api::Runtime rt(opts);
  WideGraphState st;
  st.width = 50;
  st.colors = 1;
  WideSpec spec(&st, ColoringMode::kGood);
  rt.run(spec, 0);
  auto agg = rt.counters();
  EXPECT_EQ(agg.locality.nodes, 51u);
  EXPECT_EQ(agg.locality.remote_nodes, 0u);  // single domain: nothing remote
}

TEST(ColoredExecutor, InvalidColoringDisablesColoredSteals) {
  // Invalid hints => empty frame masks => zero successful colored steals;
  // data-color-based locality accounting keeps counting real placement.
  api::RuntimeOptions opts;
  opts.workers = 2;
  opts.topology = numa::Topology(2, 1);
  auto tuning = rt::StealPolicy::nabbitc();
  tuning.first_steal_max_attempts = 64;
  opts.steal_tuning = tuning;
  api::Runtime rt(opts);
  WideGraphState st;
  st.width = 40;
  st.colors = 2;
  WideSpec spec(&st, ColoringMode::kInvalid);
  rt.run(spec, 0);
  auto agg = rt.counters();
  EXPECT_EQ(agg.locality.nodes, 41u);
  EXPECT_EQ(agg.steals_colored, 0u);
}

TEST(ColoredStaticExecutor, RunsColoredGraph) {
  api::RuntimeOptions opts;
  opts.workers = 4;
  opts.topology = numa::Topology(2, 2);
  api::Runtime rt(opts);  // kNabbitC default -> colored static executor
  auto exp = rt.static_graph();
  StaticExecutor& ex = *exp;
  std::atomic<int> computes{0};
  struct N final : TaskGraphNode {
    std::atomic<int>* c;
    std::vector<Key> ps;
    void init(ExecContext&) override {
      for (Key p : ps) add_predecessor(p);
    }
    void compute(ExecContext&) override { c->fetch_add(1); }
  };
  // Two-level fan: 0..15 roots, 16 depends on all.
  for (Key k = 0; k < 16; ++k) {
    auto n = std::make_unique<N>();
    n->c = &computes;
    ex.add_node(k, static_cast<numa::Color>(k % 4), std::move(n));
  }
  auto sinkn = std::make_unique<N>();
  sinkn->c = &computes;
  for (Key k = 0; k < 16; ++k) sinkn->ps.push_back(k);
  ex.add_node(16, 0, std::move(sinkn));
  ex.prepare();
  ex.run();
  EXPECT_EQ(computes.load(), 17);
}

TEST(ColoredExecutor, StealsAreColoredUnderGoodColoring) {
  // With abundant same-color work and the NabbitC policy, the successful
  // steals that do happen should be predominantly colored.
  api::RuntimeOptions opts;
  opts.workers = 4;
  opts.topology = numa::Topology(2, 2);
  api::Runtime rt(opts);
  WideGraphState st;
  st.width = 400;
  st.colors = 4;
  WideSpec spec(&st, ColoringMode::kGood);
  rt.run(spec, 0);
  auto agg = rt.counters();
  // On a 1-core CI host steals may be rare; when they happen under good
  // coloring, colored steals must dominate random ones.
  if (agg.steals_total() > 10) {
    EXPECT_GE(agg.steals_colored, agg.steals_random);
  }
}

}  // namespace
}  // namespace nabbitc::nabbit
