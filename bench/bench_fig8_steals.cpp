// Figure 8: average number of successful steals per worker, NabbitC vs
// Nabbit. The paper's counter-intuitive result: colored steals plus the
// forced first colored steal *reduce* total steals by an order of
// magnitude, because thieves start with frames high in the task graph.
#include "bench/bench_common.h"

using namespace nabbitc;
using harness::Variant;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (!args.cfg.has("cores")) args.cores = {20, 40, 60, 80};
  bench::print_header("Figure 8: average successful steals per worker (simulated)");

  for (const auto& name : args.workloads) {
    auto w = wl::make_workload(name, args.preset);
    if (!w) continue;
    std::printf("## %s\n", name.c_str());
    std::vector<std::string> hdr{"scheduler"};
    for (auto p : args.cores) hdr.push_back("P=" + std::to_string(p));
    Table t(hdr);
    for (Variant v : {Variant::kNabbitC, Variant::kNabbit}) {
      std::vector<std::string> row{harness::variant_label(v)};
      for (auto p : args.cores) {
        harness::SimSweepOptions so;
        so.seed = args.seed;
        auto r = harness::run_sim(*w, v, p, so);
        row.push_back(Table::fmt(r.avg_steals_per_worker(p), 1));
      }
      t.add_row(std::move(row));
      std::fflush(stdout);
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  return 0;
}
