// Figure 8: average number of successful steals per worker, NabbitC vs
// Nabbit. The paper's counter-intuitive result: colored steals plus the
// forced first colored steal *reduce* total steals by an order of
// magnitude, because thieves start with frames high in the task graph.
//
// With --trace-out=<path>, additionally runs the *real* runtime traced and
// regenerates the same statistic from the exported event trace (one Chrome
// trace JSON per workload x variant).
#include "bench/bench_common.h"

using namespace nabbitc;
using api::Variant;

namespace {

// Real-runtime traced reproduction of the figure: steals-per-worker derived
// from kStealAttempt events rather than end-of-run counters.
void run_traced(const bench::BenchArgs& args) {
  const auto preset =
      wl::preset_from_string(args.cfg.get("real_preset", "tiny"));
  const auto workers =
      static_cast<std::uint32_t>(args.cfg.get_int("trace_workers", 4));
  std::printf("## real runtime, traced (%s preset, %u workers)\n",
              wl::preset_name(preset), workers);
  Table t({"workload", "scheduler", "steals/worker/run", "colored/run",
           "random/run", "colored hit-rate", "first-steal wait (ms)"});
  for (const auto& name : args.workloads) {
    auto w = wl::make_workload(name, preset);
    if (!w) continue;
    for (Variant v : bench::variants_or(args,
                                        {Variant::kNabbitC, Variant::kNabbit})) {
      // Loop variants never emit trace events; an all-zero steals row would
      // masquerade as a measurement.
      NABBITC_CHECK_MSG(api::is_task_graph(v),
                        "variants=: the traced table runs the task-graph "
                        "runtime only (want nabbit|nabbitc)");
      harness::RealRunOptions o;
      o.workers = workers;
      o.repeats = static_cast<std::uint32_t>(args.cfg.get_int("repeats", 3));
      o.trace = args.trace;
      auto r = harness::run_real(*w, v, o);
      trace::StealSummary s = trace::summarize_steals(r.trace);
      if (r.trace.dropped > 0) {
        std::printf("[trace] WARNING: %s/%s ring overflow dropped %llu events; "
                    "per-run stats below are computed from the surviving tail "
                    "(raise --trace-capacity)\n",
                    name.c_str(), api::variant_name(v),
                    static_cast<unsigned long long>(r.trace.dropped));
      }
      // The trace spans all repeats; normalize to per-run like the
      // simulated table above (and the paper's figure).
      const double reps = static_cast<double>(o.repeats);
      t.add_row({name, api::variant_name(v),
                 Table::fmt(s.avg_steals_per_worker() / reps, 1),
                 Table::fmt(static_cast<double>(s.steals_colored) / reps, 1),
                 Table::fmt(static_cast<double>(s.steals_random) / reps, 1),
                 Table::fmt(s.colored_success_rate(), 3),
                 Table::fmt(s.avg_first_steal_wait_ms(), 3)});
      bench::export_trace(args, r.trace,
                          name + "-" + api::variant_name(v));
    }
  }
  std::printf("%s\n", t.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (!args.cfg.has("cores")) args.cores = {20, 40, 60, 80};
  bench::print_header("Figure 8: average successful steals per worker (simulated)");

  for (const auto& name : args.workloads) {
    auto w = wl::make_workload(name, args.preset);
    if (!w) continue;
    std::printf("## %s\n", name.c_str());
    std::vector<std::string> hdr{"scheduler"};
    for (auto p : args.cores) hdr.push_back("P=" + std::to_string(p));
    Table t(hdr);
    for (Variant v : bench::variants_or(args,
                                        {Variant::kNabbitC, Variant::kNabbit})) {
      std::vector<std::string> row{api::variant_name(v)};
      for (auto p : args.cores) {
        harness::SimSweepOptions so;
        so.seed = args.seed;
        auto r = harness::run_sim(*w, v, p, so);
        row.push_back(Table::fmt(r.avg_steals_per_worker(p), 1));
      }
      t.add_row(std::move(row));
      std::fflush(stdout);
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  if (args.trace.enabled) run_traced(args);
  return 0;
}
