// Ablation: the scheduler-policy knobs DESIGN.md calls out.
//
//   (a) colored_attempts k — the "constant number" of colored attempts per
//       random fallback (SectionIII). k=0 disables colored steals entirely.
//   (b) force_first_colored — the forced first colored steal on/off.
//   (c) remote_factor sensitivity — how the NabbitC/Nabbit gap scales with
//       the NUMA penalty.
//
// Run on the simulated paper machine over a representative regular
// benchmark (heat) and the skewed irregular one (page-twitter-2010).
#include "bench/bench_common.h"

using namespace nabbitc;
using api::Variant;

namespace {

sim::SimResult run_with(const wl::Workload& w, std::uint32_t p,
                        rt::StealPolicy pol, double remote_factor,
                        std::uint64_t seed) {
  sim::TaskDag dag = w.build_dag(p, nabbit::ColoringMode::kGood);
  sim::SimConfig cfg;
  cfg.num_workers = p;
  cfg.topology = numa::Topology::paper();
  cfg.steal = pol;
  cfg.penalty.remote_factor = remote_factor;
  cfg.seed = seed;
  const double avg = dag.total_work() / static_cast<double>(dag.num_nodes());
  cfg.penalty.steal_cost = avg / 1000.0;
  cfg.penalty.edge_cost = avg / 100000.0;
  return sim::simulate(dag, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Ablation: steal-policy knobs (simulated, P=80)");
  const std::uint32_t p = static_cast<std::uint32_t>(args.cfg.get_int("p", 80));

  for (const char* name : {"heat", "page-twitter-2010"}) {
    auto w = wl::make_workload(
        name, std::string(name) == "heat" ? wl::SizePreset::kPaper
                                          : wl::SizePreset::kSmall);
    std::printf("## %s\n", name);

    {
      Table t({"colored_attempts k", "speedup", "remote %", "steals/worker"});
      for (std::uint32_t k : {0u, 1u, 2u, 4u, 8u, 16u, 32u}) {
        rt::StealPolicy pol = rt::StealPolicy::nabbitc();
        pol.colored_attempts = k;
        if (k == 0) pol.colored_enabled = false;
        auto r = run_with(*w, p, pol, 2.0, args.seed);
        t.add_row({Table::fmt_int(k), Table::fmt(r.speedup(), 2),
                   Table::fmt(r.locality.percent_remote(), 1),
                   Table::fmt(r.avg_steals_per_worker(p), 1)});
        std::fflush(stdout);
      }
      std::printf("%s\n", t.to_string().c_str());
    }
    {
      Table t({"force_first_colored", "speedup", "remote %",
               "first-steal wait"});
      for (bool force : {true, false}) {
        rt::StealPolicy pol = rt::StealPolicy::nabbitc();
        pol.force_first_colored = force;
        auto r = run_with(*w, p, pol, 2.0, args.seed);
        t.add_row({force ? "on" : "off", Table::fmt(r.speedup(), 2),
                   Table::fmt(r.locality.percent_remote(), 1),
                   Table::fmt(r.avg_first_steal_wait, 1)});
      }
      std::printf("%s\n", t.to_string().c_str());
    }
    {
      Table t({"remote_factor", "nabbitc speedup", "nabbit speedup", "gain"});
      for (double rf : {1.0, 1.5, 2.0, 3.0, 4.0}) {
        auto rc = run_with(*w, p, rt::StealPolicy::nabbitc(), rf, args.seed);
        auto rn = run_with(*w, p, rt::StealPolicy::nabbit(), rf, args.seed);
        t.add_row({Table::fmt(rf, 1), Table::fmt(rc.speedup(), 2),
                   Table::fmt(rn.speedup(), 2),
                   Table::fmt(rn.speedup() > 0 ? rc.speedup() / rn.speedup() : 0,
                              2)});
        std::fflush(stdout);
      }
      std::printf("%s\n", t.to_string().c_str());
    }
  }
  return 0;
}
