// Figure 9: average per-worker idle time caused by forcing the first steal
// to be a successful colored steal, as a function of core count, for the
// heat benchmark (the paper observed the same times for all benchmarks with
// all colors near the root).
//
// Also prints the real-runtime measurement at host-feasible worker counts
// (first_steal_wait_ns from the scheduler's counters).
#include "bench/bench_common.h"

using namespace nabbitc;
using api::Variant;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 9: first-colored-steal wait vs cores");

  // --- Simulated (paper-scale heat) ---------------------------------------
  auto w = wl::make_workload(args.cfg.get("workload", "heat"), args.preset);
  std::printf("## simulated, %s (%s)\n", w->name(), w->problem_string().c_str());
  {
    Table t({"cores", "avg first-steal wait (cost units)",
             "avg idle time (cost units)", "makespan"});
    for (auto p : args.cores) {
      harness::SimSweepOptions so;
      so.seed = args.seed;
      auto r = harness::run_sim(*w, Variant::kNabbitC, p, so);
      t.add_row({Table::fmt_int(p), Table::fmt(r.avg_first_steal_wait, 1),
                 Table::fmt(r.avg_idle_time, 1), Table::fmt(r.makespan, 1)});
      std::fflush(stdout);
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  // --- Real runtime at host scale ------------------------------------------
  auto real_preset =
      wl::preset_from_string(args.cfg.get("real_preset", "tiny"));
  auto wr = wl::make_workload("heat", real_preset);
  std::printf("## real runtime, heat (%s preset)\n",
              wl::preset_name(real_preset));
  Table t({"workers", "avg first-steal wait (ms)", "forced attempts/worker",
           "trace wait (ms)"});
  for (std::uint32_t workers : {2u, 4u, 8u}) {
    harness::RealRunOptions o;
    o.workers = workers;
    o.repeats = static_cast<std::uint32_t>(args.cfg.get_int("repeats", 3));
    o.trace = args.trace;
    auto r = harness::run_real(*wr, Variant::kNabbitC, o);
    const double runs = static_cast<double>(o.repeats) * workers;
    // The same figure regenerated from the event trace: mean over recorded
    // kFirstSteal events (workers that never stole contribute nothing).
    trace::StealSummary s = trace::summarize_steals(r.trace);
    if (r.trace.dropped > 0) {
      std::printf("[trace] WARNING: p%u ring overflow dropped %llu events; "
                  "trace wait column uses the surviving tail "
                  "(raise --trace-capacity)\n",
                  workers, static_cast<unsigned long long>(r.trace.dropped));
    }
    t.add_row({Table::fmt_int(workers),
               Table::fmt(static_cast<double>(r.counters.first_steal_wait_ns) /
                              runs / 1e6,
                          3),
               Table::fmt(static_cast<double>(r.counters.first_steal_attempts) /
                              runs,
                          1),
               args.trace.enabled ? Table::fmt(s.avg_first_steal_wait_ms(), 3)
                                  : "-"});
    std::string tag = "p";  // "p" + to_string(w) trips GCC 12's -Wrestrict
    tag += std::to_string(workers);
    bench::export_trace(args, r.trace, tag);
  }
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
