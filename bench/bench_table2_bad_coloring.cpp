// Table II: speedup of NabbitC over Nabbit when every task carries a valid
// but *wrong* color (rotated half a machine away), so workers preferentially
// execute non-local work. The paper finds ratios near (or slightly below) 1:
// a bad coloring forfeits NabbitC's advantage but costs little beyond it.
#include <memory>

#include "bench/bench_common.h"

using namespace nabbitc;
using api::Variant;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (!args.cfg.has("cores")) args.cores = {20, 40, 60, 80};
  bench::print_header(
      "Table II: NabbitC(bad coloring) / Nabbit speedup ratio (simulated)");

  std::vector<std::string> hdr{"P"};
  for (const auto& name : args.workloads) hdr.push_back(name);
  Table t(hdr);
  // Build each workload once; dataset generation dominates at paper scale.
  std::vector<std::unique_ptr<wl::Workload>> ws;
  for (const auto& name : args.workloads) ws.push_back(wl::make_workload(name, args.preset));
  std::vector<std::vector<double>> ratios(args.cores.size());
  for (std::size_t pi = 0; pi < args.cores.size(); ++pi) {
    std::vector<std::string> row{Table::fmt_int(args.cores[pi])};
    for (std::size_t wi = 0; wi < ws.size(); ++wi) {
      auto& w = ws[wi];
      harness::SimSweepOptions bad, good;
      bad.coloring = nabbit::ColoringMode::kBad;
      bad.seed = good.seed = args.seed;
      auto rb = harness::run_sim(*w, Variant::kNabbitC, args.cores[pi], bad);
      auto rn = harness::run_sim(*w, Variant::kNabbit, args.cores[pi], good);
      const double ratio = rn.speedup() > 0 ? rb.speedup() / rn.speedup() : 0;
      ratios[pi].push_back(ratio);
      row.push_back(Table::fmt(ratio, 2));
      std::fflush(stdout);
    }
    t.add_row(std::move(row));
  }
  // Mean row, matching the paper's table footer.
  std::vector<std::string> mean{"mean"};
  for (std::size_t wi = 0; wi < args.workloads.size(); ++wi) {
    double acc = 0;
    for (std::size_t pi = 0; pi < args.cores.size(); ++pi) acc += ratios[pi][wi];
    mean.push_back(Table::fmt(acc / static_cast<double>(args.cores.size()), 2));
  }
  t.add_row(std::move(mean));
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
