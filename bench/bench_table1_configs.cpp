// Table I: benchmark configurations and serial execution time.
//
// Prints, for every benchmark: problem size, iteration count, task-graph
// node count, and the measured serial run time at the *host-feasible*
// preset (the paper's absolute seconds are not comparable; the column
// demonstrates the harness runs every workload end to end).
#include "bench/bench_common.h"
#include "support/timing.h"

using namespace nabbitc;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv, /*default_preset=*/"small");
  bench::print_header("Table I: benchmark configurations + serial time");

  Table t({"benchmark", "problem size", "iters", "task graph nodes",
           "serial time (s)"});
  for (const auto& name : args.workloads) {
    auto w = wl::make_workload(name, args.preset);
    if (!w) continue;
    w->prepare(1);
    w->reset();
    Timer timer;
    w->run_serial();
    const double secs = timer.seconds();
    t.add_row({name, w->problem_string(), Table::fmt_int(w->iterations()),
               Table::fmt_int(static_cast<long long>(w->num_tasks())),
               Table::fmt(secs, 3)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Paper node counts (Table I): cg=300 mg=16384 heat/fdtd/life=102400 "
              "page-uk-2002=1800 page-twitter-2010=4100 page-uk-2007-05=10500 "
              "sw=25600 swn2=16384\n");
  return 0;
}
