// Figure 7: percentage of node-level accesses that touch remote NUMA
// domains (paper SectionV-B metric), for NabbitC / Nabbit / OMP-static at
// 20-80 cores. Core counts of 10 or fewer fit in one domain and are
// omitted, as in the paper.
//
// Expected shapes: Nabbit climbs from ~45% toward ~90% with scale on every
// benchmark; NabbitC stays low on the regular benchmarks (not strictly
// increasing) and only the twitter-like and Smith-Waterman workloads stay
// high for all strategies; OMP-static is near zero for regular benchmarks.
#include "bench/bench_common.h"

using namespace nabbitc;
using api::Variant;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (!args.cfg.has("cores")) args.cores = {20, 40, 60, 80};
  bench::print_header("Figure 7: % remote accesses vs cores (simulated)");

  const auto variants = bench::variants_or(
      args, {Variant::kNabbitC, Variant::kNabbit, Variant::kOmpStatic});
  for (const auto& name : args.workloads) {
    auto w = wl::make_workload(name, args.preset);
    if (!w) continue;
    std::printf("## %s\n", name.c_str());
    std::vector<std::string> hdr{"scheduler"};
    for (auto p : args.cores) hdr.push_back("P=" + std::to_string(p));
    Table t(hdr);
    for (Variant v : variants) {
      std::vector<std::string> row{api::variant_name(v)};
      for (auto p : args.cores) {
        harness::SimSweepOptions so;
        so.seed = args.seed;
        auto r = harness::run_sim(*w, v, p, so);
        row.push_back(Table::fmt(r.locality.percent_remote(), 1) + "%");
      }
      t.add_row(std::move(row));
      std::fflush(stdout);
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  return 0;
}
