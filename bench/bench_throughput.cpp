// Sustained-serving throughput: fresh GraphSpec submission vs compiled-plan
// replay, serialized and under N concurrent replay streams.
//
// This is the benchmark behind the freeze-once/replay-many subsystem
// (src/plan/): a server fielding the same DAG per request should pay graph
// construction once, at compile time, and nothing but instance reset +
// injection on the steady-state path. Reported:
//
//   * fresh_submit_ns / replay_submit_ns — one whole graph round trip
//     (submit+wait) through each path, serialized, best repeat;
//   * replay_speedup_x — fresh / replay;
//   * sustained_submissions_per_sec, replay_node_ns — N threads replaying
//     one plan each for a timed window, all sharing the worker pool (the
//     epoch-segmented arenas keep memory flat: arena_bytes is reported);
//   * checksum verification on every phase: a replay that diverged from
//     the fresh path aborts the benchmark.
//
// Usage (key=value args, NABBITC_* env overrides):
//   bench_throughput [preset=tiny|default] [workers=N] [streams=N]
//                    [side=N] [secs=S] [variant=nabbit|nabbitc]
//                    [out=BENCH_throughput.json]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/nabbitc.h"
#include "support/config.h"
#include "support/timing.h"

using namespace nabbitc;
using nabbit::Key;

namespace {

/// Commutative-accumulate wavefront (stencil dependence shape): safe under
/// concurrent replays, and every execution's contribution is checkable.
struct StreamNode final : nabbit::TaskGraphNode {
  std::atomic<std::uint64_t>* acc;
  explicit StreamNode(std::atomic<std::uint64_t>* a) : acc(a) {}
  void init(nabbit::ExecContext&) override {
    const std::uint32_t i = nabbit::key_major(key()), j = nabbit::key_minor(key());
    if (i > 0) add_predecessor(nabbit::key_pack(i - 1, j));
    if (j > 0) add_predecessor(nabbit::key_pack(i, j - 1));
  }
  void compute(nabbit::ExecContext&) override {
    acc->fetch_add(key() + 1, std::memory_order_relaxed);
  }
};

struct StreamSpec final : nabbit::GraphSpec {
  std::atomic<std::uint64_t>* acc;
  std::uint32_t side;
  std::uint32_t colors;
  StreamSpec(std::atomic<std::uint64_t>* a, std::uint32_t s, std::uint32_t c)
      : acc(a), side(s), colors(c) {}
  nabbit::TaskGraphNode* create(nabbit::NodeArena& arena, Key) override {
    return arena.create<StreamNode>(acc);
  }
  numa::Color color_of(Key k) const override {
    return static_cast<numa::Color>(nabbit::key_major(k) % colors);
  }
  std::size_t expected_nodes() const override {
    return std::size_t{side} * side;
  }

  std::uint64_t per_run_total() const {
    std::uint64_t t = 0;
    for (std::uint32_t i = 0; i < side; ++i) {
      for (std::uint32_t j = 0; j < side; ++j) t += nabbit::key_pack(i, j) + 1;
    }
    return t;
  }
};

/// Chain-heavy pipeline workload: `chains` independent chains of `len`
/// nodes feeding one sink. The chain-fusion compiler pass collapses each
/// chain into a single scheduling unit, so the replay moves ~chains units
/// through the scheduler instead of chains*len nodes — ci.sh gates on the
/// reported fused/original node counts.
struct PipeNode final : nabbit::TaskGraphNode {
  std::atomic<std::uint64_t>* acc;
  std::uint32_t chains, len;
  PipeNode(std::atomic<std::uint64_t>* a, std::uint32_t c, std::uint32_t l)
      : acc(a), chains(c), len(l) {}
  void init(nabbit::ExecContext&) override {
    const std::uint32_t c = nabbit::key_major(key());
    const std::uint32_t i = nabbit::key_minor(key());
    if (c == chains) {  // sink: joins every chain's tail
      for (std::uint32_t t = 0; t < chains; ++t) {
        add_predecessor(nabbit::key_pack(t, len - 1));
      }
    } else if (i > 0) {
      add_predecessor(nabbit::key_pack(c, i - 1));
    }
  }
  void compute(nabbit::ExecContext&) override {
    acc->fetch_add(key() + 1, std::memory_order_relaxed);
  }
};

struct PipeSpec final : nabbit::GraphSpec {
  std::atomic<std::uint64_t>* acc;
  std::uint32_t chains, len, colors;
  PipeSpec(std::atomic<std::uint64_t>* a, std::uint32_t c, std::uint32_t l,
           std::uint32_t nc)
      : acc(a), chains(c), len(l), colors(nc) {}
  nabbit::TaskGraphNode* create(nabbit::NodeArena& arena, Key) override {
    return arena.create<PipeNode>(acc, chains, len);
  }
  numa::Color color_of(Key k) const override {
    return static_cast<numa::Color>(nabbit::key_major(k) % colors);
  }
  std::size_t expected_nodes() const override {
    return std::size_t{chains} * len + 1;
  }
  Key sink_key() const { return nabbit::key_pack(chains, 0); }
  std::uint64_t per_run_total() const {
    std::uint64_t t = sink_key() + 1;
    for (std::uint32_t c = 0; c < chains; ++c) {
      for (std::uint32_t i = 0; i < len; ++i) t += nabbit::key_pack(c, i) + 1;
    }
    return t;
  }
};

struct Metric {
  std::string name;
  double value;
  const char* unit;
};

std::vector<Metric> g_metrics;

void report(const std::string& name, double value, const char* unit) {
  g_metrics.push_back({name, value, unit});
  std::printf("%-32s %16.2f %s\n", name.c_str(), value, unit);
}

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAILED: %s\n", what);
    std::exit(1);
  }
}

/// Best-of-repeats wall time for `rounds` calls of fn().
template <typename Fn>
double best_seconds(int repeats, int rounds, Fn&& fn) {
  double best = 1e18;
  for (int r = 0; r < repeats; ++r) {
    Timer t;
    for (int i = 0; i < rounds; ++i) fn();
    const double s = t.seconds();
    if (s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg = Config::from_args(argc, argv);
  const std::string preset = cfg.get("preset", "default");
  const bool tiny = preset == "tiny";
  const std::string out = cfg.get("out", "BENCH_throughput.json");
  const auto workers = static_cast<std::uint32_t>(cfg.get_int("workers", 2));
  const auto streams = static_cast<std::uint32_t>(cfg.get_int("streams", 2));
  const auto side =
      static_cast<std::uint32_t>(cfg.get_int("side", tiny ? 16 : 32));
  const double secs = cfg.get_double("secs", tiny ? 0.15 : 1.0);
  const int rounds = tiny ? 20 : 60;
  const int repeats = tiny ? 2 : 3;
  api::Variant variant = api::parse_variant(cfg.get("variant", "nabbitc"));

  api::RuntimeOptions ro;
  ro.workers = workers;
  ro.variant = variant;
  api::Runtime rt(ro);

  const std::uint64_t nodes = std::uint64_t{side} * side;
  std::printf("NabbitC throughput bench: variant=%s workers=%u streams=%u "
              "side=%u (%llu nodes/graph)\n\n",
              api::variant_name(variant), rt.workers(), streams, side,
              static_cast<unsigned long long>(nodes));

  // --- serialized baseline: fresh GraphSpec submission per request.
  std::atomic<std::uint64_t> acc{0};
  StreamSpec spec(&acc, side, rt.workers());
  const std::uint64_t per_run = spec.per_run_total();
  rt.run(spec, nabbit::key_pack(side - 1, side - 1));  // warm-up
  acc.store(0);
  const double fresh_s = best_seconds(repeats, rounds, [&] {
    rt.run(spec, nabbit::key_pack(side - 1, side - 1));
  });
  check(acc.load() % per_run == 0, "fresh submissions diverged");
  report("fresh_submit_ns", fresh_s * 1e9 / rounds, "ns/graph");
  report("fresh_node_ns", fresh_s * 1e9 / static_cast<double>(rounds * nodes),
         "ns/node");

  // --- serialized replay: compile once, resubmit the plan.
  auto plan = rt.compile(spec, nabbit::key_pack(side - 1, side - 1),
                         /*reserve_instances=*/streams + 1);
  acc.store(0);
  rt.run(*plan);  // warm-up
  check(acc.load() == per_run, "replay diverged from fresh submission");
  acc.store(0);
  const double replay_s = best_seconds(repeats, rounds, [&] { rt.run(*plan); });
  check(acc.load() % per_run == 0, "replays diverged");
  report("plan_replay_submit_ns", replay_s * 1e9 / rounds, "ns/graph");
  report("replay_node_ns", replay_s * 1e9 / static_cast<double>(rounds * nodes),
         "ns/node");
  report("replay_speedup_x", fresh_s / replay_s, "x");

  // --- serialized batched replay: the same plan, `batch` graphs per
  // submit_batch+wait_all call. On compute-heavy graphs the win is modest
  // (the front door is amortized but the nodes still run); bench_serving's
  // single-node phase isolates the submission overhead itself.
  const auto batch_n =
      static_cast<std::size_t>(cfg.get_int("batch", 32));
  acc.store(0);
  {
    auto warm = rt.submit_batch(*plan, batch_n);
    warm.wait_all();
  }
  check(acc.load() == per_run * batch_n,
        "batched replay diverged from fresh submission");
  acc.store(0);
  const int batch_rounds = rounds / 8 + 1;
  const double batch_s = best_seconds(repeats, batch_rounds, [&] {
    auto b = rt.submit_batch(*plan, batch_n);
    b.wait_all();
  });
  check(acc.load() % per_run == 0, "batched replays diverged");
  report("plan_batch_submit_ns",
         batch_s * 1e9 / static_cast<double>(batch_rounds) /
             static_cast<double>(batch_n),
         "ns/graph");

  // --- N concurrent replay streams, one shared worker pool, timed window.
  acc.store(0);
  std::atomic<std::uint64_t> completed{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  Timer window;
  for (std::uint32_t t = 0; t < streams; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        rt.run(*plan);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  while (window.seconds() < secs) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  const double elapsed = window.seconds();
  const auto done = completed.load();
  check(done > 0, "no replay completed inside the timed window");
  check(acc.load() == per_run * done, "concurrent replays diverged");
  report("sustained_submissions_per_sec",
         static_cast<double>(done) / elapsed, "graphs/s");
  report("sustained_node_ns",
         elapsed * 1e9 / static_cast<double>(done * nodes), "ns/node");
  report("plan_instances", static_cast<double>(plan->instances_built()),
         "instances");
  report("arena_bytes_after", static_cast<double>(rt.arena_bytes()), "bytes");

  // --- chain-heavy pipeline: what the chain-fusion pass buys on the
  // workload shape it targets. Each chain collapses to one unit, so the
  // fused count must be well under the node count (gated in ci.sh).
  {
    std::atomic<std::uint64_t> pacc{0};
    const std::uint32_t chains = 8;
    const std::uint32_t len = tiny ? 16 : 64;
    PipeSpec pspec(&pacc, chains, len, rt.workers());
    auto pplan = rt.compile(pspec, pspec.sink_key());
    check(pplan->num_nodes() == chains * len + 1, "pipeline plan wrong size");
    check(pplan->num_fused_nodes() < pplan->num_nodes(),
          "chain fusion did not collapse the pipeline workload");
    const std::uint64_t pipe_total = pspec.per_run_total();
    pacc.store(0);
    rt.run(*pplan);  // warm-up + correctness
    check(pacc.load() == pipe_total, "pipeline replay diverged");
    pacc.store(0);
    const double pipe_s =
        best_seconds(repeats, rounds, [&] { rt.run(*pplan); });
    check(pacc.load() % pipe_total == 0, "pipeline replays diverged");
    report("plan_nodes", static_cast<double>(pplan->num_nodes()), "nodes");
    report("plan_fused_nodes", static_cast<double>(pplan->num_fused_nodes()),
           "units");
    report("pipeline_replay_submit_ns", pipe_s * 1e9 / rounds, "ns/graph");
  }

  // --- JSON out.
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FAILED to open %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"throughput\",\n");
  std::fprintf(f, "  \"variant\": \"%s\",\n", api::variant_name(variant));
  std::fprintf(f, "  \"workers\": %u,\n", rt.workers());
  std::fprintf(f, "  \"streams\": %u,\n", streams);
  std::fprintf(f, "  \"side\": %u,\n", side);
  std::fprintf(f, "  \"nodes_per_graph\": %llu,\n",
               static_cast<unsigned long long>(nodes));
  std::fprintf(f, "  \"metrics\": {\n");
  for (std::size_t i = 0; i < g_metrics.size(); ++i) {
    std::fprintf(f, "    \"%s\": {\"value\": %.4f, \"unit\": \"%s\"}%s\n",
                 g_metrics[i].name.c_str(), g_metrics[i].value,
                 g_metrics[i].unit, i + 1 < g_metrics.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\n[bench] wrote %zu metrics -> %s\n", g_metrics.size(), out.c_str());
  return 0;
}
