// Shared scaffolding for the paper-reproduction bench binaries.
//
// Every binary accepts key=value arguments (and NABBITC_* env overrides):
//   preset=tiny|small|medium|paper   problem scale (default per binary)
//   cores=1,2,4,10,20,40,60,80       simulated core counts
//   workloads=heat,cg,...            subset of Table I benchmarks
//   seed=<n>                         simulation seed
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "support/config.h"
#include "support/table.h"
#include "workloads/workload.h"

namespace nabbitc::bench {

struct BenchArgs {
  wl::SizePreset preset = wl::SizePreset::kPaper;
  std::vector<std::uint32_t> cores;
  std::vector<std::string> workloads;
  std::uint64_t seed = 0x5eed;
  Config cfg;
};

inline BenchArgs parse_args(int argc, char** argv,
                            const char* default_preset = "paper") {
  BenchArgs a;
  a.cfg = Config::from_args(argc, argv);
  a.preset = wl::preset_from_string(a.cfg.get("preset", default_preset));
  for (auto c : a.cfg.get_int_list("cores", {1, 4, 10, 20, 40, 80})) {
    a.cores.push_back(static_cast<std::uint32_t>(c));
  }
  a.seed = static_cast<std::uint64_t>(a.cfg.get_int("seed", 0x5eed));
  std::string wls = a.cfg.get("workloads", "");
  if (wls.empty()) {
    a.workloads = wl::workload_names();
  } else {
    std::string item;
    for (char c : wls + ",") {
      if (c == ',') {
        if (!item.empty()) a.workloads.push_back(item);
        item.clear();
      } else {
        item.push_back(c);
      }
    }
  }
  return a;
}

inline void print_header(const char* what) {
  std::printf("NabbitC reproduction — %s\n", what);
  std::printf("(simulated %s; see DESIGN.md for the substitution rationale)\n\n",
              numa::Topology::paper().describe().c_str());
}

}  // namespace nabbitc::bench
