// Shared scaffolding for the paper-reproduction bench binaries.
//
// Every binary accepts key=value arguments (and NABBITC_* env overrides);
// GNU spellings (--key-name=value) are normalized to the same keys:
//   preset=tiny|small|medium|paper   problem scale (default per binary)
//   cores=1,2,4,10,20,40,60,80       simulated core counts
//   workloads=heat,cg,...            subset of Table I benchmarks
//   variants=nabbit,nabbitc,...      scheduler subset for the figure sweeps
//                                    (consumed by fig6/fig7/fig8; parsed by
//                                    api::parse_variant — unknown names abort
//                                    listing the valid ones)
//   seed=<n>                         simulation seed
//   --trace-out=<path>               emit a Chrome trace JSON per real run
//   --trace-capacity=<events>        per-worker trace ring size
//   --trace-csv=1                    also emit the flat CSV next to the JSON
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "api/nabbitc.h"
#include "harness/experiment.h"
#include "support/check.h"
#include "support/config.h"
#include "support/table.h"
#include "trace/analysis.h"
#include "trace/export.h"
#include "workloads/workload.h"

namespace nabbitc::bench {

struct BenchArgs {
  wl::SizePreset preset = wl::SizePreset::kPaper;
  std::vector<std::uint32_t> cores;
  std::vector<std::string> workloads;
  /// The user's variants= selection; empty when the flag was not given
  /// (use variants_or to fall back to the binary's default set).
  std::vector<api::Variant> variants;
  std::uint64_t seed = 0x5eed;
  /// Chrome-trace output path (empty = tracing off). Tags are inserted
  /// before the extension when one binary emits several traces.
  std::string trace_out;
  bool trace_csv = false;
  trace::TraceConfig trace;
  Config cfg;
};

inline BenchArgs parse_args(int argc, char** argv,
                            const char* default_preset = "paper") {
  BenchArgs a;
  a.cfg = Config::from_args(argc, argv);
  a.preset = wl::preset_from_string(a.cfg.get("preset", default_preset));
  for (auto c : a.cfg.get_int_list("cores", {1, 4, 10, 20, 40, 80})) {
    a.cores.push_back(static_cast<std::uint32_t>(c));
  }
  a.seed = static_cast<std::uint64_t>(a.cfg.get_int("seed", 0x5eed));
  a.variants = api::parse_variant_list(a.cfg.get("variants", ""));
  a.trace_out = a.cfg.get("trace_out", "");
  a.trace_csv = a.cfg.get_bool("trace_csv", false);
  a.trace.enabled = !a.trace_out.empty();
  // Clamp to a sane range: negative values would wrap to huge sizes (and
  // hang next_pow2); 2^26 events/worker is already a 2.5 GiB trace.
  const std::int64_t cap = a.cfg.get_int("trace_capacity", 1 << 16);
  a.trace.ring_capacity =
      static_cast<std::size_t>(cap < 2 ? 2 : cap > (1 << 26) ? (1 << 26) : cap);
  std::string wls = a.cfg.get("workloads", "");
  if (wls.empty()) {
    a.workloads = wl::workload_names();
  } else {
    std::string item;
    for (char c : wls + ",") {
      if (c == ',') {
        if (!item.empty()) a.workloads.push_back(item);
        item.clear();
      } else {
        item.push_back(c);
      }
    }
  }
  return a;
}

/// The variant set a bench iterates: the user's variants= flag when given,
/// otherwise the binary's default list. "serial" parses (it is a canonical
/// variant) but is the baseline every table normalizes against, not a
/// scheduler these sweeps can run — reject it here with a usable message
/// instead of tripping an internal CHECK deep in run_sim.
inline std::vector<api::Variant> variants_or(
    const BenchArgs& args, std::initializer_list<api::Variant> fallback) {
  if (args.variants.empty()) return std::vector<api::Variant>(fallback);
  for (api::Variant v : args.variants) {
    NABBITC_CHECK_MSG(v != api::Variant::kSerial,
                      "variants=serial: serial is the baseline, not a "
                      "scheduler sweep (want omp-static|omp-guided|nabbit|"
                      "nabbitc)");
  }
  return args.variants;
}

/// "steals.json" + tag "heat-p4" -> "steals-heat-p4.json". Only the final
/// path component's extension counts ("/run.2026/steals" has none).
inline std::string trace_path_with_tag(const std::string& base,
                                       const std::string& tag) {
  if (tag.empty()) return base;
  const auto slash = base.rfind('/');
  auto dot = base.rfind('.');
  if (dot == std::string::npos || dot == 0 ||
      (slash != std::string::npos && dot <= slash + 1)) {
    return base + "-" + tag;
  }
  return base.substr(0, dot) + "-" + tag + base.substr(dot);
}

/// Writes the trace from one traced real run to args.trace_out (tagged), in
/// Chrome JSON (plus CSV when trace_csv=1), and prints where it went.
inline void export_trace(const BenchArgs& args, const trace::Trace& t,
                         const std::string& tag) {
  if (!args.trace.enabled || t.empty()) return;
  const std::string path = trace_path_with_tag(args.trace_out, tag);
  if (trace::write_chrome_trace_file(t, path)) {
    std::printf("[trace] %s: %zu events, %llu dropped, span %.3f ms -> %s\n",
                tag.empty() ? "run" : tag.c_str(), t.events.size(),
                static_cast<unsigned long long>(t.dropped),
                static_cast<double>(t.span_ns()) / 1e6, path.c_str());
  } else {
    std::printf("[trace] FAILED to write %s\n", path.c_str());
  }
  if (args.trace_csv) {
    const std::string csv = path + ".csv";
    if (!trace::write_csv_file(t, csv)) {
      std::printf("[trace] FAILED to write %s\n", csv.c_str());
    }
  }
}

inline void print_header(const char* what) {
  std::printf("NabbitC reproduction — %s\n", what);
  std::printf("(simulated %s; see DESIGN.md for the substitution rationale)\n\n",
              numa::Topology::paper().describe().c_str());
}

}  // namespace nabbitc::bench
