// Figure 6: speedup over serial for all ten benchmarks under OMP-static,
// OMP-guided, Nabbit, and NabbitC, on the simulated 80-core 8-domain
// machine. x-axis = cores, y-axis = speedup.
//
// The paper shows OMP-guided only for PageRank; we print it everywhere.
// Expected shapes (checked in EXPERIMENTS.md): OMP-static best on the
// regular benchmarks with NabbitC close behind and Nabbit trailing badly;
// NabbitC on top for the irregular PageRank datasets; nabbit ~ nabbitc for
// the wavefronts, both above the barrier-synchronized OMP version.
#include "bench/bench_common.h"

using namespace nabbitc;
using api::Variant;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 6: speedup vs cores (simulated)");

  const auto variants = bench::variants_or(
      args, {Variant::kOmpStatic, Variant::kOmpGuided, Variant::kNabbit,
             Variant::kNabbitC});
  for (const auto& name : args.workloads) {
    auto w = wl::make_workload(name, args.preset);
    if (!w) continue;
    std::printf("## %s (%s, %llu nodes)\n", name.c_str(),
                w->problem_string().c_str(),
                static_cast<unsigned long long>(w->num_tasks()));
    std::vector<std::string> hdr{"scheduler"};
    for (auto p : args.cores) hdr.push_back("P=" + std::to_string(p));
    Table t(hdr);
    for (Variant v : variants) {
      std::vector<std::string> row{api::variant_name(v)};
      for (auto p : args.cores) {
        harness::SimSweepOptions so;
        so.seed = args.seed;
        auto r = harness::run_sim(*w, v, p, so);
        row.push_back(Table::fmt(r.speedup(), 2));
      }
      t.add_row(std::move(row));
      std::fflush(stdout);
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  return 0;
}
