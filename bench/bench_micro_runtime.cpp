// Runtime micro-benchmarks: the primitive costs behind the paper's overhead
// analysis — deque operations, colored-steal checks, spawn/sync, node
// creation, successor registration — plus end-to-end dynamic-executor node
// throughput, the metric every hot-path perf PR is judged on.
//
// Self-contained (no google-benchmark): each micro-bench is calibrated to a
// target wall time, repeated, and the best repeat is reported. Results are
// written to a machine-readable JSON file so CI and future PRs can diff
// them (see README "Performance").
//
// Usage (key=value args, NABBITC_* env overrides):
//   bench_micro_runtime [preset=tiny|default] [out=BENCH_micro.json]
//                       [repeats=N] [filter=substring]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/nabbitc.h"
#include "nabbit/concurrent_map.h"
#include "nabbit/node.h"
#include "nabbit/successor_list.h"
#include "net/protocol.h"
#include "net/remote_graph.h"
#include "obs/metrics.h"
#include "persist/plan_blob.h"
#include "rt/arena.h"
#include "rt/color_mask.h"
#include "rt/deque.h"
#include "rt/submit_ring.h"
#include "support/config.h"
#include "support/hash.h"
#include "support/small_vec.h"
#include "support/timing.h"

using namespace nabbitc;
using nabbit::Key;

namespace {

struct BenchParams {
  double target_seconds = 0.2;  // per calibrated repeat
  int repeats = 3;
  std::uint64_t map_keys = 1 << 17;
};

struct Metric {
  std::string name;
  double value;
  const char* unit;
};

std::vector<Metric> g_metrics;

void report(const std::string& name, double value, const char* unit) {
  g_metrics.push_back({name, value, unit});
  std::printf("%-28s %12.2f %s\n", name.c_str(), value, unit);
}

/// Calibrates `fn(iters)` to roughly target_seconds, runs `repeats` timed
/// repeats, and returns the best ns/op.
template <typename Fn>
double best_ns_per_op(const BenchParams& p, Fn&& fn, std::uint64_t start_iters = 1024) {
  std::uint64_t iters = start_iters;
  for (;;) {
    Timer t;
    fn(iters);
    const double s = t.seconds();
    if (s >= p.target_seconds / 4 || iters > (1ull << 30)) break;
    const double scale = s > 1e-9 ? (p.target_seconds / s) : 16.0;
    iters = static_cast<std::uint64_t>(
        static_cast<double>(iters) * (scale > 16.0 ? 16.0 : scale)) + 1;
  }
  double best = 1e18;
  for (int r = 0; r < p.repeats; ++r) {
    Timer t;
    fn(iters);
    const double ns = t.seconds() * 1e9 / static_cast<double>(iters);
    if (ns < best) best = ns;
  }
  return best;
}

template <typename T>
void do_not_optimize(T const& v) {
  asm volatile("" : : "g"(&v) : "memory");
}

struct NopTask final : rt::Task {
  void run(rt::Worker&) override {}
};

// ---------------------------------------------------------------------------
// Micro-benchmarks. Each returns (metric name, ns/op or derived unit).

void bench_deque_push_pop(const BenchParams& p) {
  rt::WorkDeque d;
  NopTask t;
  report("deque_push_pop_ns", best_ns_per_op(p, [&](std::uint64_t n) {
           for (std::uint64_t i = 0; i < n; ++i) {
             d.push(&t);
             do_not_optimize(d.pop());
           }
         }),
         "ns/op");
}

void bench_steal_miss(const BenchParams& p) {
  // Stealing from an empty deque: the fast-fail path of every miss.
  rt::WorkDeque d;
  report("deque_steal_miss_ns", best_ns_per_op(p, [&](std::uint64_t n) {
           for (std::uint64_t i = 0; i < n; ++i) {
             rt::Task* out = nullptr;
             do_not_optimize(d.steal(&out));
           }
         }),
         "ns/op");
}

void bench_colored_steal_check(const BenchParams& p) {
  // The O(1) color-deque membership test of SectionIII (always a miss).
  rt::WorkDeque d;
  NopTask t;
  t.colors = rt::ColorMask::single(7);
  d.push(&t);
  rt::ColorMask want = rt::ColorMask::single(3);
  report("colored_steal_check_ns", best_ns_per_op(p, [&](std::uint64_t n) {
           for (std::uint64_t i = 0; i < n; ++i) {
             rt::Task* out = nullptr;
             do_not_optimize(d.steal(&out, &want));
           }
         }),
         "ns/op");
}

void bench_steal_attempt(const BenchParams& p) {
  // One full Worker::find_task miss — empty own deque, one steal round
  // against parked victims. This is the steady-state cost a thief pays per
  // attempt; the PR's target for "leaner steal loop".
  api::RuntimeOptions ro;
  ro.workers = 4;
  api::Runtime rt(ro);
  rt::Worker& w = rt.scheduler().worker(0);
  report("steal_attempt_ns", best_ns_per_op(p, [&](std::uint64_t n) {
           for (std::uint64_t i = 0; i < n; ++i) {
             if (w.find_task() != nullptr) std::abort();
           }
         }),
         "ns/op");
}

void bench_arena_create(const BenchParams& p) {
  rt::JobArena arena;
  report("arena_create_ns", best_ns_per_op(p, [&](std::uint64_t n) {
           arena.reset();
           for (std::uint64_t i = 0; i < n; ++i) {
             do_not_optimize(arena.create<std::uint64_t>(i));
             if ((i & 0xfff) == 0xfff) arena.reset();
           }
         }),
         "ns/op");
}

void bench_small_vec_push(const BenchParams& p) {
  report("small_vec_push4_ns", best_ns_per_op(p, [&](std::uint64_t n) {
           for (std::uint64_t i = 0; i < n; ++i) {
             SmallVec<Key, 4> v;
             v.push_back(i);
             v.push_back(i + 1);
             v.push_back(i + 2);
             v.push_back(i + 3);
             do_not_optimize(v.data());
           }
         }),
         "ns/op");
}

struct MapNode final : nabbit::TaskGraphNode {
  void init(nabbit::ExecContext&) override {}
  void compute(nabbit::ExecContext&) override {}
};

void bench_map_insert(const BenchParams& p) {
  // Map construction (slot arrays) is excluded: only the insert path — one
  // shard lock, one probe, one slab placement-construct — is timed.
  const std::uint64_t n = p.map_keys;
  double best = 1e18;
  for (int r = 0; r < p.repeats; ++r) {
    nabbit::ConcurrentNodeMap map(n);
    Timer t;
    for (Key k = 0; k < n; ++k) {
      do_not_optimize(map.insert_or_get(
          k, [](nabbit::NodeArena& a, Key) { return a.create<MapNode>(); }));
    }
    const double ns = t.seconds() * 1e9 / static_cast<double>(n);
    if (ns < best) best = ns;
  }
  report("map_insert_ns", best, "ns/op");
}

void bench_map_hit(const BenchParams& p) {
  nabbit::ConcurrentNodeMap map(1 << 10);
  for (Key k = 0; k < 1024; ++k) {
    map.insert_or_get(k, [](nabbit::NodeArena& a, Key) { return a.create<MapNode>(); });
  }
  report("map_hit_ns", best_ns_per_op(p, [&](std::uint64_t n) {
           for (std::uint64_t i = 0; i < n; ++i) {
             do_not_optimize(map.find(i & 1023));
           }
         }),
         "ns/op");
}

void bench_successor_add_close(const BenchParams& p) {
  MapNode node;
  report("successor_add_close_ns", best_ns_per_op(p, [&](std::uint64_t n) {
           const std::uint64_t lists = n / 8 + 1;
           for (std::uint64_t i = 0; i < lists; ++i) {
             nabbit::SuccessorList sl;
             nabbit::SuccessorCell cells[8];
             for (int a = 0; a < 8; ++a) sl.try_add(&node, &cells[a]);
             do_not_optimize(sl.close_and_take());
           }
         }),
         "ns/edge");
}

constexpr int kBatch = 1024;

void bench_spawn_sync(const BenchParams& p) {
  api::RuntimeOptions ro;
  ro.workers = 1;  // isolate spawn overhead from stealing
  api::Runtime rt(ro);
  report("spawn_sync_ns_per_task", best_ns_per_op(p, [&](std::uint64_t n) {
           const std::uint64_t rounds = n / kBatch + 1;
           for (std::uint64_t r = 0; r < rounds; ++r) {
             rt.run_parallel([](rt::Worker& w) {
               rt::TaskGroup g;
               for (int i = 0; i < kBatch; ++i) {
                 g.spawn(w, rt::ColorMask{}, [](rt::Worker&) {});
               }
               g.wait(w);
             });
           }
         }, 1 << 14),
         "ns/task");
}

// ---------------------------------------------------------------------------
// End-to-end: dynamic-executor node throughput on a 2-D grid graph (the
// stencil dependence shape: preds = left and up neighbors).

struct GridNode final : nabbit::TaskGraphNode {
  std::atomic<std::uint64_t>* acc;
  explicit GridNode(std::atomic<std::uint64_t>* a) : acc(a) {}
  void init(nabbit::ExecContext&) override {
    const std::uint32_t i = nabbit::key_major(key()), j = nabbit::key_minor(key());
    if (i > 0) add_predecessor(nabbit::key_pack(i - 1, j));
    if (j > 0) add_predecessor(nabbit::key_pack(i, j - 1));
  }
  void compute(nabbit::ExecContext&) override {
    acc->fetch_add(key(), std::memory_order_relaxed);
  }
};

struct GridSpec final : nabbit::GraphSpec {
  std::atomic<std::uint64_t>* acc;
  std::uint32_t n;
  GridSpec(std::atomic<std::uint64_t>* a, std::uint32_t side) : acc(a), n(side) {}
  nabbit::TaskGraphNode* create(nabbit::NodeArena& arena, Key) override {
    return arena.create<GridNode>(acc);
  }
  std::size_t expected_nodes() const override { return std::size_t{n} * n; }
};

void bench_dynamic_node_throughput(const BenchParams& p, std::uint32_t side,
                                   std::uint32_t workers) {
  // End to end through the façade, exactly as an embedder would run it: one
  // persistent Runtime, one submission per repeat. kNabbit = the vanilla
  // dynamic executor this metric has always measured.
  api::RuntimeOptions ro;
  ro.workers = workers;
  ro.variant = api::Variant::kNabbit;
  api::Runtime rt(ro);
  const double nodes = static_cast<double>(side) * side;
  double best = 1e18;
  for (int r = 0; r < p.repeats + 1; ++r) {  // first repeat doubles as warm-up
    std::atomic<std::uint64_t> acc{0};
    GridSpec spec(&acc, side);
    Timer t;
    api::Execution e = rt.run(spec, nabbit::key_pack(side - 1, side - 1));
    const double s = t.seconds();
    if (r > 0 && s < best) best = s;
    if (e.nodes_computed() != std::uint64_t{side} * side) std::abort();
  }
  report("dynamic_node_ns", best * 1e9 / nodes, "ns/node");
  report("dynamic_nodes_per_sec", nodes / best, "nodes/s");
}

struct OneNode final : nabbit::TaskGraphNode {
  void init(nabbit::ExecContext&) override {}
  void compute(nabbit::ExecContext&) override {}
};
struct OneSpec final : nabbit::GraphSpec {
  nabbit::TaskGraphNode* create(nabbit::NodeArena& arena, Key) override {
    return arena.create<OneNode>();
  }
  std::size_t expected_nodes() const override { return 1; }
};

// Pure façade overhead: submit+wait of a single-node graph on an idle
// runtime — per-execution state (executor, node map) plus the injection
// handshake. Graph work is one empty compute().
void bench_runtime_submit(const BenchParams& p) {
  api::RuntimeOptions ro;
  ro.workers = 1;
  api::Runtime rt(ro);
  report("runtime_submit_ns", best_ns_per_op(p, [&](std::uint64_t n) {
           for (std::uint64_t i = 0; i < n; ++i) {
             OneSpec spec;
             rt.run(spec, 0);
           }
         }, 256),
         "ns/op");
}

// The same single-node round trip through a compiled plan: instance reset +
// injection handshake only — the amortized-to-zero graph-construction path
// (compare against runtime_submit_ns). Note both run on a ONE-worker pool,
// where the external waiter parks immediately instead of spin-yielding
// (Scheduler::wait_spin_limit — spinning there steals the lone worker's
// CPU under load), so these round trips include a futex sleep/wake pair;
// multi-worker serving latency is bench_throughput / bench_serving's job.
void bench_plan_replay_submit(const BenchParams& p) {
  api::RuntimeOptions ro;
  ro.workers = 1;
  api::Runtime rt(ro);
  OneSpec spec;
  auto plan = rt.compile(spec, 0);
  report("plan_replay_submit_ns", best_ns_per_op(p, [&](std::uint64_t n) {
           for (std::uint64_t i = 0; i < n; ++i) {
             rt.run(*plan);
           }
         }, 256),
         "ns/op");
}

// The same round trip, batched: 32 single-node replays enter the scheduler
// as ONE batch (one pool checkout, one submit-ring push, one worker wake)
// and complete against one wait_all() park. Reported per GRAPH — the
// headline comparison is plan_batch_submit_ns vs plan_replay_submit_ns,
// whose gap is exactly the amortized injection handshake (on this
// 1-worker pool the singleton number includes a futex sleep/wake pair PER
// graph; the batch pays it once per 32).
void bench_plan_batch_submit(const BenchParams& p) {
  constexpr std::uint64_t kBatchN = 32;
  api::RuntimeOptions ro;
  ro.workers = 1;
  api::Runtime rt(ro);
  OneSpec spec;
  auto plan = rt.compile(spec, 0, /*reserve_instances=*/kBatchN);
  report("plan_batch_submit_ns", best_ns_per_op(p, [&](std::uint64_t n) {
           const std::uint64_t rounds = n / kBatchN + 1;
           for (std::uint64_t r = 0; r < rounds; ++r) {
             auto batch = rt.submit_batch(*plan, kBatchN);
             batch.wait_all();
           }
         }, 1 << 12),
         "ns/op");
}

// Plan persistence (src/persist/): what a daemon pays to compile a
// 1024-node wire graph from scratch, to serialize the compiled plan into a
// PlanBlob, and to load one back (full parse validation + restore over the
// blob's frozen arrays, node functions re-bound from the spec). The
// headline is plan_blob_load_ns vs plan_compile_ns — the warm-start win a
// plan cache buys per registered graph; save is the one-time cost of the
// cache miss that makes every later boot warm.
void bench_plan_persist(const BenchParams& p) {
  api::RuntimeOptions ro;
  ro.workers = 2;
  ro.variant = api::Variant::kNabbitC;
  api::Runtime rt(ro);
  const net::WireGraph g = net::make_random_wire_graph(0x51ed, 1024);
  net::WireWriter w;
  net::encode_register(g, w);
  const std::vector<std::uint8_t> canon(w.span().begin(), w.span().end());
  const std::uint64_t h = content_hash({canon.data(), canon.size()});
  net::RemoteGraphSpec spec(g, rt.workers());

  report("plan_compile_ns", best_ns_per_op(p, [&](std::uint64_t n) {
           for (std::uint64_t i = 0; i < n; ++i) {
             auto plan = rt.compile(spec, g.sink());
             do_not_optimize(plan);
           }
         }, 4),
         "ns/op");

  auto plan = rt.compile(spec, g.sink());
  report("plan_blob_save_ns", best_ns_per_op(p, [&](std::uint64_t n) {
           for (std::uint64_t i = 0; i < n; ++i) {
             const auto blob =
                 persist::serialize_plan(*plan, {canon.data(), canon.size()}, h);
             do_not_optimize(blob.data());
           }
         }, 16),
         "ns/op");

  const auto blob = std::make_shared<const std::vector<std::uint8_t>>(
      persist::serialize_plan(*plan, {canon.data(), canon.size()}, h));
  report("plan_blob_load_ns", best_ns_per_op(p, [&](std::uint64_t n) {
           for (std::uint64_t i = 0; i < n; ++i) {
             persist::PlanBlobView view;
             if (view.parse({blob->data(), blob->size()}) !=
                 persist::BlobError::kOk) {
               std::abort();
             }
             auto restored =
                 rt.restore_plan(spec, g.sink(), view.frozen(blob),
                                 view.colored(), view.count_locality());
             if (restored == nullptr) std::abort();
             do_not_optimize(restored);
           }
         }, 4),
         "ns/op");
}

// The lock-free front door in isolation: one producer pushing 32-node
// pre-linked chains into a SubmitRing and draining them back out — the
// per-NODE cost of the CAS+reversal pair that replaced the front-door
// mutex acquisition.
void bench_submit_ring_push(const BenchParams& p) {
  struct RingNode {
    RingNode* next = nullptr;
  };
  constexpr std::uint64_t kChain = 32;
  rt::SubmitRing<RingNode> ring;
  RingNode nodes[kChain];
  report("submit_ring_push_ns", best_ns_per_op(p, [&](std::uint64_t n) {
           const std::uint64_t rounds = n / kChain + 1;
           for (std::uint64_t r = 0; r < rounds; ++r) {
             // Pre-link newest-first, exactly as submit_batch does.
             for (std::uint64_t i = kChain - 1; i > 0; --i) {
               nodes[i].next = &nodes[i - 1];
             }
             ring.push_chain(&nodes[kChain - 1], &nodes[0]);
             do_not_optimize(ring.drain_fifo());
           }
         }, 1 << 16),
         "ns/op");
}

// The always-on metrics record path (src/obs/): one Histogram::record is
// the cost every instrumented hot path pays per event — the CI gate holds
// it under 15 ns so "always-on" stays true. The value pattern cycles
// through buckets to defeat a single-line cache-resident best case.
void bench_hist_record(const BenchParams& p) {
  obs::Histogram h;
  report("hist_record_ns", best_ns_per_op(p, [&](std::uint64_t n) {
           for (std::uint64_t i = 0; i < n; ++i) {
             h.record(i & 0xffff);
           }
           do_not_optimize(h);
         }, 1 << 16),
         "ns/op");
}

// Read-side cost of one registry snapshot + text exposition over a
// realistically-populated registry — what a 1 Hz scraper (nabbitc-top, the
// metrics_log_interval line) costs the daemon.
void bench_metrics_scrape(const BenchParams& p) {
  obs::Registry reg;
  for (int i = 0; i < 16; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "scrape_bench_h%d", i);
    obs::Histogram& h = reg.histogram(name);
    for (std::uint64_t v = 0; v < 4096; ++v) h.record(v * 97);
    std::snprintf(name, sizeof(name), "scrape_bench_c%d", i);
    reg.counter(name).add(static_cast<std::uint64_t>(i));
  }
  std::string text;
  report("metrics_scrape_ns", best_ns_per_op(p, [&](std::uint64_t n) {
           for (std::uint64_t i = 0; i < n; ++i) {
             text.clear();  // render_text appends
             obs::render_text(reg.snapshot(), text);
             do_not_optimize(text);
           }
         }, 16),
         "ns/op");
}

void write_json(const std::string& path, const std::string& preset,
                const BenchParams& p, std::uint32_t grid_side,
                std::uint32_t workers) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FAILED to open %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"micro_runtime\",\n");
  std::fprintf(f, "  \"preset\": \"%s\",\n", preset.c_str());
  std::fprintf(f, "  \"repeats\": %d,\n", p.repeats);
  std::fprintf(f, "  \"grid_side\": %u,\n", grid_side);
  std::fprintf(f, "  \"dynamic_workers\": %u,\n", workers);
  std::fprintf(f, "  \"metrics\": {\n");
  for (std::size_t i = 0; i < g_metrics.size(); ++i) {
    std::fprintf(f, "    \"%s\": {\"value\": %.4f, \"unit\": \"%s\"}%s\n",
                 g_metrics[i].name.c_str(), g_metrics[i].value,
                 g_metrics[i].unit, i + 1 < g_metrics.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\n[bench] wrote %zu metrics -> %s\n", g_metrics.size(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg = Config::from_args(argc, argv);
  const std::string preset = cfg.get("preset", "default");
  const std::string out = cfg.get("out", "BENCH_micro.json");
  const std::string filter = cfg.get("filter", "");

  BenchParams p;
  std::uint32_t grid_side = 96;
  std::uint32_t dyn_workers = 2;
  if (preset == "tiny") {
    p.target_seconds = 0.02;
    p.repeats = 2;
    p.map_keys = 1 << 14;
    grid_side = 32;
  }
  p.repeats = static_cast<int>(cfg.get_int("repeats", p.repeats));

  struct Entry {
    const char* name;
    void (*fn)(const BenchParams&);
  };
  const Entry entries[] = {
      {"deque_push_pop", bench_deque_push_pop},
      {"steal_miss", bench_steal_miss},
      {"colored_steal_check", bench_colored_steal_check},
      {"steal_attempt", bench_steal_attempt},
      {"arena_create", bench_arena_create},
      {"small_vec_push", bench_small_vec_push},
      {"map_insert", bench_map_insert},
      {"map_hit", bench_map_hit},
      {"successor_add_close", bench_successor_add_close},
      {"spawn_sync", bench_spawn_sync},
      {"runtime_submit", bench_runtime_submit},
      {"plan_replay_submit", bench_plan_replay_submit},
      {"plan_batch_submit", bench_plan_batch_submit},
      {"plan_persist", bench_plan_persist},
      {"submit_ring_push", bench_submit_ring_push},
      {"hist_record", bench_hist_record},
      {"metrics_scrape", bench_metrics_scrape},
  };
  std::printf("NabbitC micro-runtime bench (preset=%s, repeats=%d)\n\n",
              preset.c_str(), p.repeats);
  for (const Entry& e : entries) {
    if (!filter.empty() && std::string(e.name).find(filter) == std::string::npos) {
      continue;
    }
    e.fn(p);
  }
  if (filter.empty() ||
      std::string("dynamic_node_throughput").find(filter) != std::string::npos) {
    bench_dynamic_node_throughput(p, grid_side, dyn_workers);
  }
  write_json(out, preset, p, grid_side, dyn_workers);
  return 0;
}
