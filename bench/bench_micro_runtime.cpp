// Runtime micro-benchmarks (google-benchmark): the primitive costs behind
// the paper's overhead analysis — deque operations, colored-steal checks,
// spawn/sync, concurrent-map creation, color gathering.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <vector>

#include "nabbit/concurrent_map.h"
#include "nabbit/node.h"
#include "nabbitc/spawn_colors.h"
#include "rt/arena.h"
#include "rt/color_mask.h"
#include "rt/deque.h"
#include "rt/parallel_for.h"
#include "rt/scheduler.h"

using namespace nabbitc;

namespace {

struct NopTask final : rt::Task {
  void run(rt::Worker&) override {}
};

void BM_DequePushPop(benchmark::State& state) {
  rt::WorkDeque d;
  NopTask t;
  for (auto _ : state) {
    d.push(&t);
    benchmark::DoNotOptimize(d.pop());
  }
}
BENCHMARK(BM_DequePushPop);

void BM_DequeStealUncontended(benchmark::State& state) {
  rt::WorkDeque d;
  NopTask t;
  for (auto _ : state) {
    d.push(&t);
    rt::Task* out = nullptr;
    benchmark::DoNotOptimize(d.steal(&out));
  }
}
BENCHMARK(BM_DequeStealUncontended);

void BM_ColoredStealCheck(benchmark::State& state) {
  // The O(1) color-deque membership test of SectionIII.
  rt::WorkDeque d;
  NopTask t;
  t.colors = rt::ColorMask::single(7);
  d.push(&t);
  rt::ColorMask want = rt::ColorMask::single(3);  // always a miss
  for (auto _ : state) {
    rt::Task* out = nullptr;
    benchmark::DoNotOptimize(d.steal(&out, &want));
  }
}
BENCHMARK(BM_ColoredStealCheck);

void BM_ColorMaskOps(benchmark::State& state) {
  rt::ColorMask a = rt::ColorMask::single(3), b = rt::ColorMask::single(77);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersects(b));
    benchmark::DoNotOptimize((a | b).count());
  }
}
BENCHMARK(BM_ColorMaskOps);

void BM_ArenaCreate(benchmark::State& state) {
  rt::JobArena arena;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arena.create<std::uint64_t>(1u));
    if (arena.blocks_allocated() > 64) {
      state.PauseTiming();
      arena.reset();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_ArenaCreate);

struct MapNode final : nabbit::TaskGraphNode {
  void init(nabbit::ExecContext&) override {}
  void compute(nabbit::ExecContext&) override {}
};

void BM_ConcurrentMapInsert(benchmark::State& state) {
  auto map = std::make_unique<nabbit::ConcurrentNodeMap>(1 << 16);
  nabbit::Key k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        map->insert_or_get(k++, [](nabbit::Key) { return new MapNode; }));
  }
}
BENCHMARK(BM_ConcurrentMapInsert);

void BM_ConcurrentMapHit(benchmark::State& state) {
  nabbit::ConcurrentNodeMap map(1 << 10);
  for (nabbit::Key k = 0; k < 1024; ++k) {
    map.insert_or_get(k, [](nabbit::Key) { return new MapNode; });
  }
  nabbit::Key k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(k++ & 1023));
  }
}
BENCHMARK(BM_ConcurrentMapHit);

void BM_SpawnSync(benchmark::State& state) {
  rt::SchedulerConfig cfg;
  cfg.num_workers = 1;  // isolate spawn overhead from stealing
  rt::Scheduler sched(cfg);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sched.execute([n](rt::Worker& w) {
      rt::TaskGroup g;
      for (int i = 0; i < n; ++i) {
        g.spawn(w, rt::ColorMask{}, [](rt::Worker&) {});
      }
      g.wait(w);
    });
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SpawnSync)->Arg(64)->Arg(1024);

void BM_ParallelForOverhead(benchmark::State& state) {
  rt::SchedulerConfig cfg;
  cfg.num_workers = 2;
  rt::Scheduler sched(cfg);
  for (auto _ : state) {
    std::atomic<long> acc{0};
    sched.execute([&acc](rt::Worker& w) {
      rt::parallel_for(w, 0, 4096, 64, [&acc](std::int64_t i) {
        acc.fetch_add(i, std::memory_order_relaxed);
      });
    });
    benchmark::DoNotOptimize(acc.load());
  }
}
BENCHMARK(BM_ParallelForOverhead);

void BM_StealLoopTracing(benchmark::State& state) {
  // The steal loop + task execution with tracing off (arg 0) vs on (arg 1).
  // The untraced cost must stay within noise of the seed runtime: tracing
  // off is one never-taken null-pointer branch per instrumentation site.
  rt::SchedulerConfig cfg;
  cfg.num_workers = 4;
  cfg.trace.enabled = state.range(0) != 0;
  cfg.trace.ring_capacity = 1u << 14;  // drop-oldest keeps long runs bounded
  rt::Scheduler sched(cfg);
  for (auto _ : state) {
    std::atomic<long> acc{0};
    sched.execute([&acc](rt::Worker& w) {
      rt::parallel_for(w, 0, 8192, 16, [&acc](std::int64_t i) {
        acc.fetch_add(i, std::memory_order_relaxed);
      });
    });
    benchmark::DoNotOptimize(acc.load());
  }
}
BENCHMARK(BM_StealLoopTracing)->Arg(0)->Arg(1);

struct BenchItem {
  int id;
  numa::Color color;
};

void BM_SpawnColoredGather(benchmark::State& state) {
  // gather_colors + morphing spawn of a mixed-color batch (Figure 3/4 path).
  rt::SchedulerConfig cfg;
  cfg.num_workers = 1;
  rt::Scheduler sched(cfg);
  const int n = static_cast<int>(state.range(0));
  std::vector<BenchItem> proto;
  for (int i = 0; i < n; ++i) proto.push_back({i, static_cast<numa::Color>(i % 8)});
  struct Leaf {
    void operator()(rt::Worker&, const BenchItem& item) const {
      benchmark::DoNotOptimize(item.id);
    }
  };
  for (auto _ : state) {
    std::vector<BenchItem> items = proto;  // spawn sorts in place
    sched.execute([&items](rt::Worker& w) {
      rt::TaskGroup g;
      nabbit::spawn_colored(
          w, g, items.data(), items.size(),
          [](const BenchItem& it) { return it.color; }, Leaf{});
      g.wait(w);
    });
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SpawnColoredGather)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
