// The graph service end to end: N concurrent clients over TCP loopback
// against an in-process nabbitc-serve core.
//
// Every client registers the SAME wavefront graph (content-addressed, so
// the server compiles exactly one GraphPlan shared by all sessions) and
// runs a closed loop: keep `window` submissions in flight, collect RESULT
// pushes, verify each one bit for bit against the client-side reference
// evaluation, resubmit. Reported:
//
//   * rps_sustained — completed submissions per second across all clients
//     over the measured window (the service's replay throughput including
//     the socket round trip);
//   * submit_result_p50/p95/p99_ns — per-submission submit -> RESULT
//     latency over every client's samples;
//   * plans_compiled — server-side compile count (must be 1: one graph,
//     many sessions, compiled exactly once);
//   * busy_rejections — admission-control pushback observed (the closed
//     loop sizes itself under the caps, so normally 0);
//   * arena_bytes_after — server frame memory after the run settles.
//
// Usage (key=value args, NABBITC_* env overrides):
//   bench_net [preset=tiny|default] [clients=N] [window=N] [side=N]
//             [workers=N] [secs=N] [batch=N] [variant=nabbit|nabbitc]
//             [out=BENCH_net.json]
//
// batch=N (N > 1) switches clients to kSubmitBatch window refills: one
// frame (one syscall each way) carries up to N submissions.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/variant.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "persist/mmap_file.h"
#include "support/config.h"
#include "support/stats.h"
#include "support/timing.h"

using namespace nabbitc;
using namespace nabbitc::net;

namespace {

struct Metric {
  std::string name;
  double value;
  const char* unit;
};

std::vector<Metric> g_metrics;

void report(const std::string& name, double value, const char* unit) {
  g_metrics.push_back({name, value, unit});
  std::printf("%-24s %16.2f %s\n", name.c_str(), value, unit);
}

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAILED: %s\n", what);
    std::exit(1);
  }
}

/// One client's closed loop: `window` in flight, verify every RESULT.
struct ClientResult {
  std::vector<double> latencies_ns;  // submit -> RESULT round trips
  std::uint64_t completed = 0;
  std::uint64_t busy = 0;
  std::uint64_t handle = 0;
  bool ok = false;
  std::string error;
};

void run_client(std::uint16_t port, const WireGraph& g, std::uint32_t window,
                std::uint32_t batch, std::uint64_t seed,
                const std::atomic<bool>& stop, ClientResult& out) {
  Client c;
  if (!c.connect_tcp(port)) {
    out.error = "connect: " + c.last_error();
    return;
  }
  const auto reg = c.register_graph(g);
  if (!reg) {
    out.error = "register: " + c.last_error();
    return;
  }
  out.handle = reg->handle;
  const std::uint64_t expect_sink = expected_sink_value(g);

  struct Pending {
    std::uint64_t exec_id;
    std::uint64_t payload;
    std::uint64_t t0;
  };
  std::vector<Pending> pending;
  pending.reserve(window);
  std::uint64_t next_payload = seed;

  const auto submit_one = [&]() -> bool {
    const std::uint64_t payload = next_payload++;
    const auto s = c.submit(reg->handle, payload, api::Priority::kNormal);
    if (!s) {
      out.error = "submit: " + c.last_error();
      return false;
    }
    if (!s->accepted) {
      ++out.busy;  // pushback, not failure; the loop just runs narrower
      return true;
    }
    pending.push_back({s->exec_id, payload, now_ns()});
    return true;
  };

  // Batch mode: top the window up with ONE kSubmitBatch frame (one syscall
  // each way for k submissions). A rejected suffix counts as busy pushback,
  // exactly like a singleton BUSY.
  const auto submit_many = [&](std::uint32_t k) -> bool {
    std::vector<Client::BatchItem> items(k);
    for (auto& it : items) it.payload = next_payload++;
    const std::uint64_t t0 = now_ns();
    const auto b = c.submit_batch(reg->handle, items);
    if (!b) {
      out.error = "submit_batch: " + c.last_error();
      return false;
    }
    out.busy += b->rejected;
    for (std::size_t i = 0; i < b->exec_ids.size(); ++i) {
      pending.push_back({b->exec_ids[i], items[i].payload, t0});
    }
    return true;
  };

  const auto reap_one = [&]() -> bool {
    const Pending p = pending.front();
    pending.erase(pending.begin());
    const auto r = c.wait_result(p.exec_id, /*timeout_ms=*/30'000);
    if (!r) {
      out.error = "wait_result: " + c.last_error();
      return false;
    }
    if (r->state != static_cast<std::uint8_t>(api::ExecStatus::kCompleted) ||
        r->sink_value != expect_sink ||
        r->result != wire_result(expect_sink, p.payload)) {
      out.error = "WRONG RESULT";
      return false;
    }
    out.latencies_ns.push_back(static_cast<double>(now_ns() - p.t0));
    ++out.completed;
    return true;
  };

  while (!stop.load(std::memory_order_relaxed)) {
    while (pending.size() < window && !stop.load(std::memory_order_relaxed)) {
      const auto room = static_cast<std::uint32_t>(window - pending.size());
      if (batch > 1 && room > 1) {
        if (!submit_many(std::min(batch, room))) return;
      } else {
        if (!submit_one()) return;
      }
    }
    if (pending.empty()) continue;  // every submit hit BUSY; retry
    if (!reap_one()) return;
  }
  while (!pending.empty()) {
    if (!reap_one()) return;
  }
  out.ok = true;
}

// ------------------------------------------------------ plan-cache phase
//
// Cold vs warm REGISTER latency: boot a daemon on a plan-cache directory,
// register `regs` DISTINCT graphs over one connection, and time each
// REGISTER round trip. The cold pass compiles (and persists) every plan;
// the warm pass — a fresh daemon on the same directory, warm_start off so
// the load cost lands on the REGISTER itself — restores every plan from
// disk. The gap is the per-graph warm-start win the cache buys.
double registration_phase(const std::string& cache_dir, std::uint32_t regs,
                          std::uint32_t reg_nodes, std::uint32_t workers,
                          api::Variant variant,
                          std::uint64_t expect_compiled) {
  ServerOptions so;
  so.runtime.workers = workers;
  so.runtime.variant = variant;
  so.tcp = true;
  so.tcp_port = 0;
  so.plan_cache_dir = cache_dir;
  so.warm_start = false;  // time the loads inside REGISTER, not start()
  Server server(std::move(so));
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "FAILED to start cache-phase server: %s\n",
                 err.c_str());
    std::exit(1);
  }
  Client c;
  check(c.connect_tcp(server.tcp_port()), "cache-phase connect");
  const std::uint64_t t0 = now_ns();
  for (std::uint32_t i = 0; i < regs; ++i) {
    const WireGraph g = make_random_wire_graph(0xCAFEu + i, reg_nodes);
    const auto reg = c.register_graph(g);
    check(reg.has_value(), "cache-phase register");
  }
  const double per_reg_ns =
      static_cast<double>(now_ns() - t0) / static_cast<double>(regs);
  const StatsMsg stats = server.stats();
  check(stats.plans_compiled == expect_compiled,
        "cache-phase compile count (plan cache not working?)");
  server.stop();
  return per_reg_ns;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg = Config::from_args(argc, argv);
  const std::string preset = cfg.get("preset", "default");
  const bool tiny = preset == "tiny";
  const std::string out = cfg.get("out", "BENCH_net.json");
  const auto clients =
      static_cast<std::uint32_t>(cfg.get_int("clients", tiny ? 4 : 8));
  const auto window =
      static_cast<std::uint32_t>(cfg.get_int("window", tiny ? 2 : 4));
  const auto side = static_cast<std::uint32_t>(cfg.get_int("side", tiny ? 8 : 16));
  const auto workers = static_cast<std::uint32_t>(cfg.get_int("workers", 2));
  // batch > 1: clients refill their window with kSubmitBatch frames instead
  // of per-submission kSubmit frames.
  const auto batch = static_cast<std::uint32_t>(cfg.get_int("batch", 1));
  const double secs = static_cast<double>(cfg.get_int("secs", tiny ? 2 : 5));
  api::Variant variant = api::parse_variant(cfg.get("variant", "nabbitc"));

  ServerOptions so;
  so.runtime.workers = workers;
  so.runtime.variant = variant;
  so.tcp = true;
  so.tcp_port = 0;  // ephemeral
  so.max_sessions = clients + 4;
  so.max_inflight_per_session = window + 4;
  so.max_inflight_global = clients * window + 8;
  so.reserve_instances = clients * window;  // allocation-free steady state
  Server server(std::move(so));
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "FAILED to start server: %s\n", err.c_str());
    return 1;
  }

  std::printf("NabbitC net bench: variant=%s workers=%u clients=%u window=%u "
              "batch=%u graph=%ux%u secs=%.0f (tcp:%u)\n\n",
              api::variant_name(variant), server.runtime().workers(), clients,
              window, batch, side, side, secs, server.tcp_port());
  check(clients >= 4, "bench requires >= 4 concurrent clients");

  const WireGraph g = make_wavefront_wire_graph(side, /*seed=*/0xbe7c0de);

  std::atomic<bool> stop{false};
  std::vector<ClientResult> results(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::uint32_t i = 0; i < clients; ++i) {
    threads.emplace_back(run_client, server.tcp_port(), std::cref(g), window,
                         batch, 0x1000ull * (i + 1), std::cref(stop),
                         std::ref(results[i]));
  }

  const std::uint64_t t_start = now_ns();
  const auto deadline =
      t_start + static_cast<std::uint64_t>(secs * 1e9);
  while (now_ns() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  const double elapsed_s = static_cast<double>(now_ns() - t_start) * 1e-9;

  std::vector<double> all;
  std::uint64_t completed = 0, busy = 0;
  for (std::uint32_t i = 0; i < clients; ++i) {
    check(results[i].ok,
          results[i].ok ? "" : ("client failed: " + results[i].error).c_str());
    check(results[i].completed > 0, "client completed no submissions");
    check(results[i].handle == results[0].handle,
          "clients disagree on the content-addressed handle");
    all.insert(all.end(), results[i].latencies_ns.begin(),
               results[i].latencies_ns.end());
    completed += results[i].completed;
    busy += results[i].busy;
  }

  server.runtime().wait_idle();
  const StatsMsg stats = server.stats();
  check(stats.plans_compiled == 1, "shared graph compiled more than once");
  check(stats.completed >= completed, "server completed < client-verified");

  report("clients", static_cast<double>(clients), "sessions");
  report("rps_sustained", static_cast<double>(completed) / elapsed_s,
         "graphs/s");
  report("submit_result_p50_ns", nearest_rank_percentile(all, 0.50), "ns");
  report("submit_result_p95_ns", nearest_rank_percentile(all, 0.95), "ns");
  report("submit_result_p99_ns", nearest_rank_percentile(all, 0.99), "ns");
  report("plans_compiled", static_cast<double>(stats.plans_compiled), "plans");
  report("busy_rejections", static_cast<double>(busy), "rejections");
  report("arena_bytes_after", static_cast<double>(stats.arena_bytes), "bytes");

  server.stop();

  // Cold-vs-warm REGISTER: same graphs, fresh daemons, shared cache dir.
  {
    char tmpl[] = "/tmp/nbb-cache-XXXXXX";
    const char* cache_dir = ::mkdtemp(tmpl);
    check(cache_dir != nullptr, "mkdtemp for plan cache");
    const std::uint32_t regs = tiny ? 8 : 16;
    const std::uint32_t reg_nodes = tiny ? 128 : 256;
    const double cold_ns = registration_phase(cache_dir, regs, reg_nodes,
                                              workers, variant,
                                              /*expect_compiled=*/regs);
    const double warm_ns = registration_phase(cache_dir, regs, reg_nodes,
                                              workers, variant,
                                              /*expect_compiled=*/0);
    report("register_cold_ns", cold_ns, "ns");
    report("register_warm_ns", warm_ns, "ns");
    for (const std::string& name : persist::list_dir(cache_dir)) {
      persist::remove_file(std::string(cache_dir) + "/" + name);
    }
    ::rmdir(cache_dir);
  }

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FAILED to open %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"net\",\n");
  std::fprintf(f, "  \"variant\": \"%s\",\n", api::variant_name(variant));
  std::fprintf(f, "  \"workers\": %u,\n", workers);
  std::fprintf(f, "  \"window\": %u,\n", window);
  std::fprintf(f, "  \"batch\": %u,\n", batch);
  std::fprintf(f, "  \"nodes_per_graph\": %llu,\n",
               static_cast<unsigned long long>(std::uint64_t{side} * side));
  std::fprintf(f, "  \"metrics\": {\n");
  for (std::size_t i = 0; i < g_metrics.size(); ++i) {
    std::fprintf(f, "    \"%s\": {\"value\": %.4f, \"unit\": \"%s\"}%s\n",
                 g_metrics[i].name.c_str(), g_metrics[i].value,
                 g_metrics[i].unit, i + 1 < g_metrics.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\n[bench] wrote %zu metrics -> %s\n", g_metrics.size(), out.c_str());
  return 0;
}
