// Serving-grade submission control: high-priority latency under saturating
// low-priority load, and cancellation drain time.
//
// The serving scenario behind SubmitOptions: a runtime fielding a steady
// stream of background (low-priority) graph replays must still complete a
// latency-sensitive (high-priority) request promptly — the scheduler's
// priority lanes pop the probe's root ahead of the queued background roots,
// so the probe waits only for in-flight node computes, not for the whole
// backlog. Reported:
//
//   * unloaded_p50_ns / p95 — high-priority submit->complete round trip on
//     an idle pool (the floor);
//   * high_prio_p50_ns / p95 / max — the same probe while `streams`
//     low-priority replays are kept in flight continuously (the headline:
//     bounded latency under saturation);
//   * background_completed — background graphs retired during the loaded
//     window (the low lane's guaranteed progress);
//   * cancel_drain_p50_ns — submit+cancel round trip of a background
//     graph: how fast a cancelled execution vacates the pool (the skip
//     cascade), with cancel_skipped_mean counting the nodes it skipped;
//   * arena_bytes_after — frame memory at the end (cancellations must not
//     leak epoch-stamped blocks).
//
// Usage (key=value args, NABBITC_* env overrides):
//   bench_serving [preset=tiny|default] [workers=N] [streams=N]
//                 [side_bg=N] [side_hi=N] [samples=N]
//                 [variant=nabbit|nabbitc] [out=BENCH_serving.json]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/nabbitc.h"
#include "rt/status.h"
#include "support/config.h"
#include "support/stats.h"
#include "support/timing.h"

using namespace nabbitc;
using nabbit::Key;

namespace {

/// Commutative-accumulate wavefront (same shape as bench_throughput): safe
/// under concurrent replays, work per node is one fetch_add.
struct StreamNode final : nabbit::TaskGraphNode {
  std::atomic<std::uint64_t>* acc;
  explicit StreamNode(std::atomic<std::uint64_t>* a) : acc(a) {}
  void init(nabbit::ExecContext&) override {
    const std::uint32_t i = nabbit::key_major(key()), j = nabbit::key_minor(key());
    if (i > 0) add_predecessor(nabbit::key_pack(i - 1, j));
    if (j > 0) add_predecessor(nabbit::key_pack(i, j - 1));
  }
  void compute(nabbit::ExecContext&) override {
    acc->fetch_add(1, std::memory_order_relaxed);
  }
};

struct StreamSpec final : nabbit::GraphSpec {
  std::atomic<std::uint64_t>* acc;
  std::uint32_t side;
  std::uint32_t colors;
  StreamSpec(std::atomic<std::uint64_t>* a, std::uint32_t s, std::uint32_t c)
      : acc(a), side(s), colors(c) {}
  nabbit::TaskGraphNode* create(nabbit::NodeArena& arena, Key) override {
    return arena.create<StreamNode>(acc);
  }
  numa::Color color_of(Key k) const override {
    return static_cast<numa::Color>(nabbit::key_major(k) % colors);
  }
  std::size_t expected_nodes() const override { return std::size_t{side} * side; }
};

/// Single-node graph for the batched-submission phase: submission overhead
/// IS the workload, so the per-graph cost measured there is the front-door
/// round trip, not compute.
struct TickNode final : nabbit::TaskGraphNode {
  std::atomic<std::uint64_t>* acc;
  explicit TickNode(std::atomic<std::uint64_t>* a) : acc(a) {}
  void init(nabbit::ExecContext&) override {}
  void compute(nabbit::ExecContext&) override {
    acc->fetch_add(1, std::memory_order_relaxed);
  }
};

struct TickSpec final : nabbit::GraphSpec {
  std::atomic<std::uint64_t>* acc;
  explicit TickSpec(std::atomic<std::uint64_t>* a) : acc(a) {}
  nabbit::TaskGraphNode* create(nabbit::NodeArena& arena, Key) override {
    return arena.create<TickNode>(acc);
  }
  std::size_t expected_nodes() const override { return 1; }
};

struct Metric {
  std::string name;
  double value;
  const char* unit;
};

std::vector<Metric> g_metrics;

void report(const std::string& name, double value, const char* unit) {
  g_metrics.push_back({name, value, unit});
  std::printf("%-28s %16.2f %s\n", name.c_str(), value, unit);
}

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAILED: %s\n", what);
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg = Config::from_args(argc, argv);
  const std::string preset = cfg.get("preset", "default");
  const bool tiny = preset == "tiny";
  const std::string out = cfg.get("out", "BENCH_serving.json");
  const auto workers = static_cast<std::uint32_t>(cfg.get_int("workers", 2));
  const auto streams = static_cast<std::uint32_t>(cfg.get_int("streams", tiny ? 2 : 4));
  const auto side_bg =
      static_cast<std::uint32_t>(cfg.get_int("side_bg", tiny ? 20 : 32));
  const auto side_hi =
      static_cast<std::uint32_t>(cfg.get_int("side_hi", 8));
  const int samples = static_cast<int>(cfg.get_int("samples", tiny ? 60 : 400));
  api::Variant variant = api::parse_variant(cfg.get("variant", "nabbitc"));

  api::RuntimeOptions ro;
  ro.workers = workers;
  ro.variant = variant;
  api::Runtime rt(ro);

  std::printf("NabbitC serving bench: variant=%s workers=%u streams=%u "
              "bg=%ux%u probe=%ux%u samples=%d\n\n",
              api::variant_name(variant), rt.workers(), streams, side_bg,
              side_bg, side_hi, side_hi, samples);

  std::atomic<std::uint64_t> bg_acc{0}, hi_acc{0};
  StreamSpec bg_spec(&bg_acc, side_bg, rt.workers());
  StreamSpec hi_spec(&hi_acc, side_hi, rt.workers());
  auto bg_plan = rt.compile(bg_spec, nabbit::key_pack(side_bg - 1, side_bg - 1),
                            /*reserve_instances=*/streams + 1);
  auto hi_plan = rt.compile(hi_spec, nabbit::key_pack(side_hi - 1, side_hi - 1),
                            /*reserve_instances=*/2);
  const std::uint64_t hi_nodes = std::uint64_t{side_hi} * side_hi;
  const std::uint64_t bg_nodes = std::uint64_t{side_bg} * side_bg;

  api::SubmitOptions hi_opts;
  hi_opts.priority = api::Priority::kHigh;
  hi_opts.name = "latency-probe";
  api::SubmitOptions lo_opts;
  lo_opts.priority = api::Priority::kLow;
  lo_opts.name = "background";

  // --- floor: the probe on an idle pool.
  for (int i = 0; i < 8; ++i) rt.run(*hi_plan, hi_opts);  // warm-up
  std::vector<double> unloaded;
  unloaded.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const std::uint64_t t0 = now_ns();
    rt.run(*hi_plan, hi_opts);
    unloaded.push_back(static_cast<double>(now_ns() - t0));
  }
  check(hi_acc.load() % hi_nodes == 0, "probe replays diverged");
  report("unloaded_p50_ns", nearest_rank_percentile(unloaded, 0.50), "ns");
  report("unloaded_p95_ns", nearest_rank_percentile(unloaded, 0.95), "ns");

  // --- the headline: the probe while `streams` low-priority replays are
  // kept in flight (every completed background handle is resubmitted
  // before the next probe, so the low lane always has a queued root).
  std::vector<api::Execution> background;
  background.reserve(streams);
  for (std::uint32_t s = 0; s < streams; ++s) {
    background.push_back(rt.submit(*bg_plan, lo_opts));
  }
  std::uint64_t bg_completed = 0;
  std::vector<double> loaded;
  loaded.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    for (auto& slot : background) {
      if (slot.done()) {
        slot = rt.submit(*bg_plan, lo_opts);  // old handle joins + recycles
        ++bg_completed;
      }
    }
    const std::uint64_t t0 = now_ns();
    rt.run(*hi_plan, hi_opts);
    loaded.push_back(static_cast<double>(now_ns() - t0));
  }
  for (auto& slot : background) {
    slot.wait();
    ++bg_completed;
  }
  background.clear();
  check(hi_acc.load() % hi_nodes == 0, "loaded probe replays diverged");
  check(bg_acc.load() == bg_completed * bg_nodes, "background replays diverged");
  report("high_prio_p50_ns", nearest_rank_percentile(loaded, 0.50), "ns");
  report("high_prio_p95_ns", nearest_rank_percentile(loaded, 0.95), "ns");
  report("high_prio_p99_ns", nearest_rank_percentile(loaded, 0.99), "ns");
  report("high_prio_max_ns", loaded.back(), "ns");  // sorted by nearest_rank_percentile()
  report("background_completed", static_cast<double>(bg_completed), "graphs");

  // --- cancellation drain: how fast a cancelled background graph vacates
  // the pool (submit, let it start, cancel, wait).
  std::vector<double> drain;
  std::uint64_t skipped_total = 0;
  int outcome_count[4] = {0, 0, 0, 0};  // indexed by api::ExecStatus
  const int cancel_rounds = samples / 4 + 1;
  for (int i = 0; i < cancel_rounds; ++i) {
    api::Execution e = rt.submit(*bg_plan, lo_opts);
    const std::uint64_t t0 = now_ns();
    e.cancel();
    e.wait();
    drain.push_back(static_cast<double>(now_ns() - t0));
    const api::Status st = e.status();
    skipped_total += st.skipped_nodes;
    ++outcome_count[static_cast<std::uint8_t>(st.state) & 3];
  }
  // Cancel legitimately races completion; both terminal states are fine,
  // but the split is worth seeing (all-completed would mean the cancel
  // never landed before the sink and the drain numbers measure nothing).
  std::printf("cancel outcomes:");
  for (std::uint8_t s = 0; s < 4; ++s) {
    if (outcome_count[s] > 0) {
      std::printf(" %s=%d", rt::exec_status_name(static_cast<api::ExecStatus>(s)),
                  outcome_count[s]);
    }
  }
  std::printf("\n");
  report("cancel_drain_p50_ns", nearest_rank_percentile(drain, 0.50), "ns");
  report("cancel_skipped_mean",
         static_cast<double>(skipped_total) / static_cast<double>(cancel_rounds),
         "nodes");
  // --- batched submission throughput: singleton submit+wait per graph vs
  // submit_batch(32)+wait_all per 32 graphs, on a single-node plan so the
  // front-door round trip IS the workload. The singleton loop pays the
  // injection handshake (and, against a busy pool, a park/unpark) per
  // graph; the batch pays one pool checkout, one ring push, and one wake
  // per 32 — this amortization factor is the tentpole number. Tiny-graph
  // lowering is masked OFF for these two plans: a 1-node plan would
  // otherwise run inline and never touch the front door being measured.
  // The inline path is reported separately as inline_submits_per_sec.
  {
    constexpr std::uint64_t kBatchSize = 32;
    std::atomic<std::uint64_t> tick_acc{0};
    TickSpec tick_spec(&tick_acc);
    auto tick_plan = rt.compile(tick_spec, 0,
                                /*reserve_instances=*/kBatchSize + 1,
                                plan::kPassAll & ~plan::kPassTinyLower);
    const std::uint64_t budget_ns = tiny ? 100'000'000ull : 400'000'000ull;
    const auto timed_rate = [&](auto&& round, std::uint64_t graphs_per_round) {
      round();  // warm-up
      std::uint64_t done = 0;
      const std::uint64_t t0 = now_ns();
      std::uint64_t t1 = t0;
      do {
        round();
        done += graphs_per_round;
        t1 = now_ns();
      } while (t1 - t0 < budget_ns);
      return static_cast<double>(done) * 1e9 / static_cast<double>(t1 - t0);
    };

    std::uint64_t expected = 0;
    const double singleton_rate = timed_rate(
        [&] {
          rt.run(*tick_plan);
          ++expected;
        },
        1);
    const double batch_rate = timed_rate(
        [&] {
          auto batch = rt.submit_batch(*tick_plan, kBatchSize);
          batch.wait_all();
          expected += kBatchSize;
        },
        kBatchSize);
    check(tick_acc.load() == expected, "batched replays diverged");
    report("singleton_submits_per_sec", singleton_rate, "graphs/s");
    report("batch32_submits_per_sec", batch_rate, "graphs/s");
    report("batch_speedup_x", batch_rate / singleton_rate, "x");

    // Tiny-graph lowering: the same 1-node plan compiled with default
    // passes replays inline on the submitting thread — no scheduler, no
    // park/unpark. This is the fastest way to serve a tiny graph and must
    // beat even the batched scheduler path (gated in ci.sh).
    auto inline_plan = rt.compile(tick_spec, 0, /*reserve_instances=*/1);
    check(inline_plan->serial_lowered(), "1-node plan was not lowered");
    const double inline_rate = timed_rate(
        [&] {
          rt.run(*inline_plan);
          ++expected;
        },
        1);
    check(tick_acc.load() == expected, "inline replays diverged");
    report("inline_submits_per_sec", inline_rate, "graphs/s");
  }

  rt.wait_idle();
  report("arena_bytes_after", static_cast<double>(rt.arena_bytes()), "bytes");

  // --- JSON out.
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FAILED to open %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serving\",\n");
  std::fprintf(f, "  \"variant\": \"%s\",\n", api::variant_name(variant));
  std::fprintf(f, "  \"workers\": %u,\n", rt.workers());
  std::fprintf(f, "  \"streams\": %u,\n", streams);
  std::fprintf(f, "  \"bg_nodes_per_graph\": %llu,\n",
               static_cast<unsigned long long>(bg_nodes));
  std::fprintf(f, "  \"probe_nodes_per_graph\": %llu,\n",
               static_cast<unsigned long long>(hi_nodes));
  std::fprintf(f, "  \"metrics\": {\n");
  for (std::size_t i = 0; i < g_metrics.size(); ++i) {
    std::fprintf(f, "    \"%s\": {\"value\": %.4f, \"unit\": \"%s\"}%s\n",
                 g_metrics[i].name.c_str(), g_metrics[i].value,
                 g_metrics[i].unit, i + 1 < g_metrics.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\n[bench] wrote %zu metrics -> %s\n", g_metrics.size(), out.c_str());
  return 0;
}
