#!/usr/bin/env bash
# Configure + build + test, Release and Debug, warnings-as-errors.
# Usage: ./ci.sh [Release|Debug|all]   (default: all)
set -euo pipefail
cd "$(dirname "$0")"

JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}
MODE=${1:-all}

run_one() {
  local build_type=$1
  local dir="build-ci-${build_type,,}"
  echo "=== ${build_type}: configure ==="
  cmake -B "${dir}" -S . \
    -DCMAKE_BUILD_TYPE="${build_type}" \
    -DNABBITC_WERROR=ON
  echo "=== ${build_type}: build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== ${build_type}: ctest ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

case "${MODE}" in
  Release|Debug) run_one "${MODE}" ;;
  all)
    run_one Release
    run_one Debug
    ;;
  *)
    echo "usage: $0 [Release|Debug|all]" >&2
    exit 2
    ;;
esac

echo "=== header self-containment: src/api + src/plan + src/net + src/persist + src/obs ==="
# Every public façade header must compile standalone, warning-clean: an
# embedder's first include may be any one of them. src/plan is part of the
# public surface (GraphPlan is returned by Runtime::compile), src/net
# is the service embedding surface (Server/Client link against the daemon
# core from outside the engine), src/persist is the plan-cache surface
# (PlanBlobView/PlanCacheDir are how embedders warm-start without a daemon),
# and src/obs is the metrics surface (embedders scrape registry() directly).
HDR_TMP="$(mktemp -d)"
trap 'rm -rf "${HDR_TMP}"' EXIT
for h in src/api/*.h src/plan/*.h src/net/*.h src/persist/*.h src/obs/*.h; do
  rel="${h#src/}"
  echo "  ${rel}"
  printf '#include "%s"\n' "${rel}" > "${HDR_TMP}/tu.cpp"
  "${CXX:-c++}" -std=c++20 -Isrc -Wall -Wextra -Werror -fsyntax-only "${HDR_TMP}/tu.cpp"
done
echo "header self-containment OK"

echo "=== bench-smoke: micro-runtime JSON ==="
BENCH_DIR="build-ci-release"
if [ -d "${BENCH_DIR}" ]; then
  "${BENCH_DIR}/bench_micro_runtime" preset=tiny out="${BENCH_DIR}/BENCH_micro.json"
  python3 - "${BENCH_DIR}/BENCH_micro.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
expected = [
    "deque_push_pop_ns", "deque_steal_miss_ns", "colored_steal_check_ns",
    "steal_attempt_ns", "arena_create_ns", "small_vec_push4_ns",
    "map_insert_ns", "map_hit_ns", "successor_add_close_ns",
    "spawn_sync_ns_per_task", "runtime_submit_ns", "plan_replay_submit_ns",
    "plan_batch_submit_ns", "submit_ring_push_ns",
    "plan_compile_ns", "plan_blob_save_ns", "plan_blob_load_ns",
    "hist_record_ns", "metrics_scrape_ns",
    "dynamic_node_ns", "dynamic_nodes_per_sec",
]
missing = [k for k in expected if k not in d["metrics"]]
assert not missing, f"missing metrics: {missing}"
for k in expected:
    v = d["metrics"][k]["value"]
    assert isinstance(v, (int, float)) and v > 0, f"bad value for {k}: {v}"
m = d["metrics"]
# Persistence acceptance: loading a blob (parse + validate + restore) must
# be decisively cheaper than recompiling, or the plan cache buys nothing.
# The real box shows ~2x; requiring load < compile leaves noise headroom.
load = m["plan_blob_load_ns"]["value"]
comp = m["plan_compile_ns"]["value"]
assert load < comp, f"blob load ({load:.0f} ns) not cheaper than compile ({comp:.0f} ns)"
# Observability acceptance: one histogram record (the cost every
# instrumented hot path pays per event) must stay in single-digit-to-low-
# double-digit ns, or "always-on" is a lie. The real box shows ~2 ns.
rec = m["hist_record_ns"]["value"]
assert rec < 15, f"hist_record_ns too slow for always-on metrics: {rec:.1f} ns"
print(f"bench-smoke OK: {len(d['metrics'])} metrics, "
      f"load/compile = {load / comp:.2f}, hist_record = {rec:.1f} ns")
EOF
  # Regression gate: the single-graph replay round trip against the number
  # committed in BENCH_micro.json. Tiny-graph lowering turned this into an
  # inline (scheduler-free) run; the gate keeps it from quietly regressing
  # back to a futex round trip. 4x headroom absorbs slower CI machines —
  # the regression this guards (inline -> scheduler) is a >10x cliff.
  python3 - "${BENCH_DIR}/BENCH_micro.json" BENCH_micro.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    fresh = json.load(f)["metrics"]["plan_replay_submit_ns"]["value"]
with open(sys.argv[2]) as f:
    committed = json.load(f)["metrics"]["plan_replay_submit_ns"]["value"]
assert fresh < committed * 4.0, (
    f"plan_replay_submit_ns regressed: {fresh:.0f} ns vs committed "
    f"{committed:.0f} ns (gate: 4x)")
print(f"plan-replay gate OK: {fresh:.0f} ns vs committed {committed:.0f} ns")
EOF
else
  echo "bench-smoke skipped (no Release build dir)"
fi

echo "=== bench-smoke: throughput JSON ==="
if [ -d "${BENCH_DIR}" ]; then
  "${BENCH_DIR}/bench_throughput" preset=tiny out="${BENCH_DIR}/BENCH_throughput.json"
  python3 - "${BENCH_DIR}/BENCH_throughput.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
expected = [
    "fresh_submit_ns", "fresh_node_ns", "plan_replay_submit_ns",
    "plan_batch_submit_ns", "replay_node_ns", "replay_speedup_x",
    "sustained_submissions_per_sec", "sustained_node_ns", "plan_instances",
    "arena_bytes_after", "plan_nodes", "plan_fused_nodes",
    "pipeline_replay_submit_ns",
]
missing = [k for k in expected if k not in d["metrics"]]
assert not missing, f"missing metrics: {missing}"
for k in expected:
    v = d["metrics"][k]["value"]
    assert isinstance(v, (int, float)) and v > 0, f"bad value for {k}: {v}"
m = d["metrics"]
# Smoke-level acceptance: the replay path must amortize graph construction.
# The real box shows ~15%; 60% leaves room for noisy shared CI machines.
ratio = m["plan_replay_submit_ns"]["value"] / m["fresh_submit_ns"]["value"]
assert ratio < 0.60, f"plan replay too close to fresh submit: {ratio:.2f}"
# Chain-fusion acceptance: on the pipeline workload the compiler must have
# collapsed chains into units — the fused count strictly under the node
# count (a pure pipeline of C chains fuses to ~C+1 units).
nodes = m["plan_nodes"]["value"]
fused = m["plan_fused_nodes"]["value"]
assert fused < nodes, f"chain fusion inert on pipeline workload: {fused} units for {nodes} nodes"
print(f"bench-throughput OK: {len(d['metrics'])} metrics, replay/fresh = {ratio:.2f}, "
      f"fused {nodes:.0f} nodes -> {fused:.0f} units")
EOF
else
  echo "bench-throughput smoke skipped (no Release build dir)"
fi

echo "=== bench-smoke: serving JSON ==="
if [ -d "${BENCH_DIR}" ]; then
  "${BENCH_DIR}/bench_serving" preset=tiny out="${BENCH_DIR}/BENCH_serving.json"
  python3 - "${BENCH_DIR}/BENCH_serving.json" <<'EOF'
import json, math, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
expected = [
    "unloaded_p50_ns", "unloaded_p95_ns", "high_prio_p50_ns",
    "high_prio_p95_ns", "high_prio_p99_ns", "high_prio_max_ns",
    "background_completed", "cancel_drain_p50_ns", "cancel_skipped_mean",
    "singleton_submits_per_sec", "batch32_submits_per_sec",
    "batch_speedup_x", "inline_submits_per_sec", "arena_bytes_after",
]
missing = [k for k in expected if k not in d["metrics"]]
assert not missing, f"missing metrics: {missing}"
# The acceptance property: the high-priority latency under saturating
# low-priority load exists and is finite (and sane: positive, sub-second).
p50 = d["metrics"]["high_prio_p50_ns"]["value"]
assert isinstance(p50, (int, float)) and math.isfinite(p50), f"bad p50: {p50}"
assert 0 < p50 < 1e9, f"high-priority p50 out of range: {p50}"
# Background (low-priority) work must have progressed under the load.
assert d["metrics"]["background_completed"]["value"] > 0, "low lane starved"
# Batching acceptance: batch-32 submission must sustain >= 5x the
# serialized singleton rate (the real box shows ~10x; 5x is the gate).
speedup = d["metrics"]["batch_speedup_x"]["value"]
assert speedup >= 5.0, f"batch-32 speedup below the 5x gate: {speedup:.2f}"
# Tiny-graph lowering acceptance: the inline (scheduler-free) replay of a
# 1-node plan must decisively beat the scheduler singleton path (the real
# box shows >20x; 2x is the gate).
inline_rate = d["metrics"]["inline_submits_per_sec"]["value"]
singleton = d["metrics"]["singleton_submits_per_sec"]["value"]
assert inline_rate >= 2.0 * singleton, (
    f"inline submit rate ({inline_rate:.0f}/s) not decisively above the "
    f"scheduler singleton rate ({singleton:.0f}/s)")
print(f"bench-serving OK: high_prio_p50 = {p50:.0f} ns, "
      f"batch_speedup = {speedup:.1f}x, "
      f"inline/singleton = {inline_rate / singleton:.1f}x")
EOF
else
  echo "bench-serving smoke skipped (no Release build dir)"
fi

echo "=== bench-smoke: net JSON ==="
if [ -d "${BENCH_DIR}" ]; then
  "${BENCH_DIR}/bench_net" preset=tiny secs=2 out="${BENCH_DIR}/BENCH_net.json"
  python3 - "${BENCH_DIR}/BENCH_net.json" <<'EOF'
import json, math, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
expected = [
    "clients", "rps_sustained", "submit_result_p50_ns",
    "submit_result_p95_ns", "submit_result_p99_ns", "plans_compiled",
    "busy_rejections", "arena_bytes_after",
    "register_cold_ns", "register_warm_ns",
]
missing = [k for k in expected if k not in d["metrics"]]
assert not missing, f"missing metrics: {missing}"
m = d["metrics"]
# The acceptance properties: >= 4 concurrent clients saw finite
# submit->RESULT latency, and the shared graph was compiled exactly once.
assert m["clients"]["value"] >= 4, "fewer than 4 concurrent clients"
p99 = m["submit_result_p99_ns"]["value"]
assert isinstance(p99, (int, float)) and math.isfinite(p99), f"bad p99: {p99}"
assert 0 < p99 < 60e9, f"submit->RESULT p99 out of range: {p99}"
assert m["plans_compiled"]["value"] == 1, "shared graph compiled more than once"
assert m["rps_sustained"]["value"] > 0, "no sustained throughput"
# Plan-cache acceptance: a REGISTER served from the cache (warm daemon,
# same cache dir) must beat one that compiles. The real box shows ~5x.
cold = m["register_cold_ns"]["value"]
warm = m["register_warm_ns"]["value"]
assert 0 < warm < cold, f"warm REGISTER ({warm:.0f} ns) not cheaper than cold ({cold:.0f} ns)"
print(f"bench-net OK: {m['clients']['value']:.0f} clients, "
      f"p99 = {p99:.0f} ns, rps = {m['rps_sustained']['value']:.0f}, "
      f"warm/cold register = {warm / cold:.2f}")
EOF
else
  echo "bench-net smoke skipped (no Release build dir)"
fi

echo "=== serve-smoke: daemon + client over a unix socket ==="
if [ -d "${BENCH_DIR}" ]; then
  SERVE_SOCK="$(mktemp -u /tmp/nabbitc-ci-XXXXXX.sock)"
  "${BENCH_DIR}/nabbitc-serve" unix="${SERVE_SOCK}" workers=2 &
  SERVE_PID=$!
  # Wait for the daemon to bind (it prints "listening" after, but the
  # socket file appearing is the machine-checkable signal).
  for _ in $(seq 1 100); do
    [ -S "${SERVE_SOCK}" ] && break
    sleep 0.1
  done
  [ -S "${SERVE_SOCK}" ] || { echo "serve-smoke: daemon never bound" >&2; kill "${SERVE_PID}"; exit 1; }
  "${BENCH_DIR}/nabbitc-serve" connect="${SERVE_SOCK}" submits=24 side=8 \
    || { echo "serve-smoke: client failed" >&2; kill "${SERVE_PID}"; exit 1; }
  kill -TERM "${SERVE_PID}"
  # The daemon must drain and exit 0 on SIGTERM; a non-zero wait status
  # (crash, sanitizer report, hung shutdown) fails the step.
  wait "${SERVE_PID}"
  rm -f "${SERVE_SOCK}"
  echo "serve-smoke OK"
else
  echo "serve-smoke skipped (no Release build dir)"
fi

echo "=== metrics-smoke: METRICS scrape + nabbitc-top against a live daemon ==="
if [ -d "${BENCH_DIR}" ]; then
  METRICS_SOCK="$(mktemp -u /tmp/nabbitc-ci-XXXXXX.sock)"
  METRICS_LOG="$(mktemp /tmp/nabbitc-ci-mlog-XXXXXX)"
  # metrics_log_interval exercises the daemon's periodic stderr line.
  "${BENCH_DIR}/nabbitc-serve" unix="${METRICS_SOCK}" workers=2 \
    metrics_log_interval=1 2>"${METRICS_LOG}" &
  METRICS_PID=$!
  for _ in $(seq 1 100); do
    [ -S "${METRICS_SOCK}" ] && break
    sleep 0.1
  done
  [ -S "${METRICS_SOCK}" ] || { echo "metrics-smoke: daemon never bound" >&2; kill "${METRICS_PID}"; exit 1; }
  # Sequential submits (the client waits each RESULT), so no BUSY pushback:
  # the daemon completes EXACTLY this many executions.
  METRICS_N=16
  "${BENCH_DIR}/nabbitc-serve" connect="${METRICS_SOCK}" submits="${METRICS_N}" side=6 \
    || { echo "metrics-smoke: client failed" >&2; kill "${METRICS_PID}"; exit 1; }
  "${BENCH_DIR}/nabbitc-serve" connect="${METRICS_SOCK}" metrics=1 \
    > "${BENCH_DIR}/metrics-scrape.txt" \
    || { echo "metrics-smoke: scrape failed" >&2; kill "${METRICS_PID}"; exit 1; }
  python3 - "${BENCH_DIR}/metrics-scrape.txt" "${METRICS_N}" <<'EOF'
import sys
with open(sys.argv[1]) as f:
    text = f.read()
n = int(sys.argv[2])
values = {}
for line in text.splitlines():
    parts = line.split()
    if len(parts) == 2:
        values[parts[0]] = parts[1]
required = [
    "submit_complete_ns_count", "queue_wait_ns_count",
    "net_dispatch_ns_count", "net_reply_ns_count",
    "net_bytes_in_total", "net_bytes_out_total",
    "net_submitted_total", "net_completed_total",
    "net_sessions_active", "net_inflight",
    "sched_dispatch_ns_count", "sched_tasks_total",
    "sched_lane_depth_0", "rt_arena_bytes",
]
missing = [k for k in required if k not in values]
assert not missing, f"missing metrics in scrape: {missing}"
# The acceptance count: the daemon completed exactly N submissions, and
# every completion recorded exactly one submit_complete_ns sample.
got = int(values["submit_complete_ns_count"])
assert got == n, f"submit_complete_ns count {got}, want {n}"
assert 'submit_complete_ns{quantile="0.99"}' in text, "no quantile lines"
print(f"metrics scrape OK: {len(values)} series, submit_complete count = {got}")
EOF
  # The slow ring must hold the completed requests with coherent stamps.
  "${BENCH_DIR}/nabbitc-serve" connect="${METRICS_SOCK}" slow=1 \
    > "${BENCH_DIR}/slow-dump.txt" \
    || { echo "metrics-smoke: slow dump failed" >&2; kill "${METRICS_PID}"; exit 1; }
  grep -q "^slow exec=" "${BENCH_DIR}/slow-dump.txt" \
    || { echo "metrics-smoke: slow ring is empty" >&2; kill "${METRICS_PID}"; exit 1; }
  # nabbitc-top renders live rows against the same daemon.
  "${BENCH_DIR}/nabbitc-top" connect="${METRICS_SOCK}" interval_ms=200 iters=2 \
    > "${BENCH_DIR}/top-out.txt" \
    || { echo "metrics-smoke: nabbitc-top failed" >&2; kill "${METRICS_PID}"; exit 1; }
  grep -q "rps" "${BENCH_DIR}/top-out.txt" \
    || { echo "metrics-smoke: nabbitc-top rendered nothing" >&2; kill "${METRICS_PID}"; exit 1; }
  # Let at least one metrics_log_interval tick land, then shut down.
  sleep 1.2
  kill -TERM "${METRICS_PID}"
  wait "${METRICS_PID}"
  grep -q "nabbitc-serve: metrics " "${METRICS_LOG}" \
    || { echo "metrics-smoke: no periodic metrics log line" >&2; exit 1; }
  rm -f "${METRICS_SOCK}" "${METRICS_LOG}"
  echo "metrics-smoke OK"
else
  echo "metrics-smoke skipped (no Release build dir)"
fi

echo "=== metrics-overhead: metrics-on within 8% of metrics-off ==="
if [ -d "${BENCH_DIR}" ]; then
  # The always-on claim, A/B tested: the instrumented dynamic-executor
  # throughput with metrics recording enabled must stay within run noise of
  # the same build with the NABBITC_METRICS=0 kill-switch.
  "${BENCH_DIR}/bench_micro_runtime" preset=tiny repeats=3 filter=dynamic \
    out="${BENCH_DIR}/BENCH_metrics_on.json"
  NABBITC_METRICS=0 "${BENCH_DIR}/bench_micro_runtime" preset=tiny repeats=3 \
    filter=dynamic out="${BENCH_DIR}/BENCH_metrics_off.json"
  python3 - "${BENCH_DIR}/BENCH_metrics_on.json" "${BENCH_DIR}/BENCH_metrics_off.json" <<'EOF'
import json, sys
def rate(path):
    with open(path) as f:
        return json.load(f)["metrics"]["dynamic_nodes_per_sec"]["value"]
on, off = rate(sys.argv[1]), rate(sys.argv[2])
ratio = on / off
assert 0.92 <= ratio, \
    f"metrics-on throughput {on:.0f} below 92% of metrics-off {off:.0f} (ratio {ratio:.3f})"
print(f"metrics-overhead OK: on/off = {ratio:.3f}")
EOF
else
  echo "metrics-overhead skipped (no Release build dir)"
fi

echo "=== cache-smoke: plan cache survives a daemon restart ==="
if [ -d "${BENCH_DIR}" ]; then
  # A typoed cache flag must refuse to start (exit 2), not silently run a
  # daemon the operator believes is persistent.
  set +e
  "${BENCH_DIR}/nabbitc-serve" unix=/tmp/never-bound.sock plan_cashe=/tmp/x \
    2>/dev/null
  TYPO_RC=$?
  set -e
  [ "${TYPO_RC}" -eq 2 ] || {
    echo "cache-smoke: typoed flag exited ${TYPO_RC}, want 2" >&2; exit 1;
  }

  CACHE_DIR="$(mktemp -d /tmp/nabbitc-ci-cache-XXXXXX)"
  # Boot a daemon on the cache dir, register + run the smoke graph with the
  # client asserting the server-side compile count, SIGTERM, wait.
  boot_and_register() {
    local expect_compiled=$1
    local sock
    sock="$(mktemp -u /tmp/nabbitc-ci-XXXXXX.sock)"
    "${BENCH_DIR}/nabbitc-serve" unix="${sock}" workers=2 \
      plan_cache="${CACHE_DIR}" &
    local pid=$!
    for _ in $(seq 1 100); do
      [ -S "${sock}" ] && break
      sleep 0.1
    done
    [ -S "${sock}" ] || { echo "cache-smoke: daemon never bound" >&2; kill "${pid}"; return 1; }
    "${BENCH_DIR}/nabbitc-serve" connect="${sock}" submits=8 side=8 \
      expect_plans_compiled="${expect_compiled}" \
      || { echo "cache-smoke: client failed" >&2; kill "${pid}"; return 1; }
    kill -TERM "${pid}"
    wait "${pid}"
    rm -f "${sock}"
  }
  # Cold boot: empty cache, the one graph compiles (and persists).
  boot_and_register 1
  # Warm restart on the same directory: the acceptance property — zero
  # compiles; the plan comes back from disk.
  boot_and_register 0
  rm -rf "${CACHE_DIR}"
  echo "cache-smoke OK"
else
  echo "cache-smoke skipped (no Release build dir)"
fi

echo "=== traced smoke run ==="
SMOKE_DIR="build-ci-release"
[ -d "${SMOKE_DIR}" ] || SMOKE_DIR="build-ci-debug"
"${SMOKE_DIR}/bench_fig9_first_steal" cores=4 preset=tiny repeats=1 \
  --trace-out="${SMOKE_DIR}/fig9-trace.json"
python3 - "${SMOKE_DIR}/fig9-trace-p4.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
assert d["traceEvents"], "trace has no events"
print(f"trace OK: {len(d['traceEvents'])} events")
EOF

if [ "${MODE}" = "Debug" ]; then
  echo "=== ThreadSanitizer leg skipped (Debug-only invocation) ==="
  echo "CI OK"
  exit 0
fi

echo "=== ThreadSanitizer leg (race-prone subset) ==="
# The CI box has 1 CPU and tsan is ~10x, so this leg builds only the test
# binaries and runs the race-prone subset: scheduler concurrency and
# submission control (rt), concurrent submissions (api), concurrent/
# cancelled plan replays (plan), two randomized-DAG fuzz seeds, the
# graph service's cross-thread paths (sessions vs. runtime callbacks:
# shared-plan registration, disconnect-cancel, shutdown drain), and the
# plan cache's concurrent store/load/forget (persist).
# Benign-by-design races (the colored-steal peek) are suppressed in
# tsan.supp, which documents each entry.
TSAN_DIR="build-ci-tsan"
cmake -B "${TSAN_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DNABBITC_SANITIZE=thread \
  -DNABBITC_WERROR=ON \
  -DNABBITC_BUILD_BENCH=OFF \
  -DNABBITC_BUILD_EXAMPLES=OFF
cmake --build "${TSAN_DIR}" -j "${JOBS}" \
  --target rt_test api_test plan_test fuzz_graph_test net_test persist_test obs_test
# history_size=7 (max) keeps long-gone access stacks restorable — a report
# whose peer stack tsan cannot restore bypasses function-scoped
# suppressions (see tsan.supp) and would fail the leg spuriously.
TSAN_OPTIONS="suppressions=$(pwd)/tsan.supp halt_on_error=1 history_size=7" \
  ctest --test-dir "${TSAN_DIR}" --output-on-failure --timeout 600 \
  -R 'SubmissionControl|ConcurrentStealersEachTaskOnce|ConcurrentRootJobsShareThePool|ConcurrentStress|PlanConcurrent|OverlappingSubmissions|SubmitOptionsKeepSteadyState|FuzzDag8.*/[01]$|FuzzTiny8.*/[01]$|FuzzBatch8.*/[01]$|SubmitRing|BatchSubmission|SharedPlanCompiledOnceAcrossSessions|BatchSubmitDeliversPerItemResults|BatchAdmissionAdmitsPrefixAndReportsScope|NetDisconnect|NetShutdown|PersistConcurrent|ConcurrentRecordMergeMatchesSerial|MetricsAndSlowCaptureOverUnix'
echo "tsan leg OK"

echo "CI OK"
